#include "sim/transient.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <stdexcept>

#include "core/metrics.hpp"
#include "core/trace.hpp"
#include "sim/fault.hpp"
#include "sim/solver.hpp"
#include "sim/stats.hpp"

namespace amsyn::sim {

using circuit::Device;
using circuit::DeviceType;
using circuit::MosOp;
using circuit::NodeId;

namespace {

/// Update the companion-state map from a freshly accepted solution.
/// Keys: (deviceIndex << 3) | slot, slots: 0-4 MOS caps, 6 inductor, 7 cap.
void refreshCompanions(const Mna& mna, const num::VecD& x, double /*h*/, bool trapezoidal,
                       const std::map<std::size_t, CompanionState>& prev, double hUsed,
                       std::map<std::size_t, CompanionState>& out) {
  const auto& devs = mna.netlist().devices();
  auto v = [&](NodeId nd) { return mna.nodeVoltage(x, nd); };

  for (std::size_t k = 0; k < devs.size(); ++k) {
    const Device& d = devs[k];
    switch (d.type) {
      case DeviceType::Capacitor: {
        const std::size_t key = (k << 3) | 7;
        const double vNow = v(d.nodes[0]) - v(d.nodes[1]);
        double iNow = 0.0;
        if (auto it = prev.find(key); it != prev.end()) {
          const CompanionState& st = it->second;
          iNow = trapezoidal ? 2.0 * d.value / hUsed * (vNow - st.prevV) - st.prevI
                             : d.value / hUsed * (vNow - st.prevV);
        }
        out[key] = CompanionState{vNow, iNow};
        break;
      }
      case DeviceType::Inductor: {
        const std::size_t key = (k << 3) | 6;
        const std::size_t br = mna.branchIndex(k);
        const double iNow = x[br];
        const double vNow = v(d.nodes[0]) - v(d.nodes[1]);
        // prevV stores current, prevI stores voltage (see mna.cpp).
        out[key] = CompanionState{iNow, vNow};
        break;
      }
      case DeviceType::Mos: {
        const MosOp op = circuit::evalMos(d.mos, mna.process(), v(d.nodes[0]), v(d.nodes[1]),
                                          v(d.nodes[2]), v(d.nodes[3]));
        const struct {
          NodeId a, b;
          double cap;
          std::size_t slot;
        } caps[5] = {{d.nodes[1], d.nodes[2], op.cgs, 0},
                     {d.nodes[1], d.nodes[0], op.cgd, 1},
                     {d.nodes[1], d.nodes[3], op.cgb, 2},
                     {d.nodes[0], d.nodes[3], op.cdb, 3},
                     {d.nodes[2], d.nodes[3], op.csb, 4}};
        for (const auto& cc : caps) {
          const std::size_t key = (k << 3) | cc.slot;
          const double vNow = v(cc.a) - v(cc.b);
          double iNow = 0.0;
          if (auto it = prev.find(key); it != prev.end()) {
            const CompanionState& st = it->second;
            iNow = trapezoidal ? 2.0 * cc.cap / hUsed * (vNow - st.prevV) - st.prevI
                               : cc.cap / hUsed * (vNow - st.prevV);
          }
          out[key] = CompanionState{vNow, iNow};
        }
        break;
      }
      default:
        break;
    }
  }
}

/// LU factorization cache keyed on the Jacobian's values.  Linear circuits
/// (and quasi-linear stretches of nonlinear ones) assemble the identical
/// Jacobian at every Newton iteration and every timestep of a fixed-h
/// sweep: the companion conductances depend only on (h, integration
/// method), so only the RHS moves.  Re-factoring is then pure waste — an
/// O(n^2) value comparison replaces the O(n^3) factorization.
struct JacobianCache {
  num::MatrixD values;  ///< the matrix behind `lu`
  std::optional<num::LUD> lu;
};

/// Sparse twin of JacobianCache: the value-vector compare is O(nnz) instead
/// of O(n^2), and a refresh is a numeric refactor instead of a dense
/// factorization.  Equality decisions coincide with the dense cache's —
/// dense entries outside the sparse pattern are structurally zero on both
/// sides of the compare.
struct SparseJacobianCache {
  std::vector<double> values;  ///< values behind the last successful factor
  bool valid = false;
};

/// How one timestep's Newton iteration ended.  Failed (singular or NaN)
/// steps feed the step-halving retry loop; Budget aborts the whole sweep.
enum class StepOutcome { Converged, Failed, Budget };

bool allFinite(const num::VecD& v) {
  for (double e : v)
    if (!std::isfinite(e)) return false;
  return true;
}

StepOutcome newtonStep(const Mna& mna, SparseNewtonContext* sparse,
                       SparseJacobianCache& scache, num::VecD& x,
                       const AssemblyOptions& aopt, const TransientOptions& opts,
                       JacobianCache& cache) {
  const std::size_t n = mna.size();
  num::VecD f(n);
  for (std::size_t it = 0; it < opts.maxNewton; ++it) {
    if (!consumeWork(opts.budget)) return StepOutcome::Budget;

    num::VecD dx;
    bool haveDx = false;
    if (sparse && !sparse->solver.fellBack()) {
      sparse->sys.assemble(x, aopt, true, &f);
      if (!allFinite(f)) return StepOutcome::Failed;
      if (scache.valid && scache.values == sparse->sys.values()) {
        recordLuReuse();
        dx = sparse->solver.solve(f);
        haveDx = true;
      } else {
        if (FaultInjector::threadLocal().takeLuFailure()) {
          scache.valid = false;
          return StepOutcome::Failed;
        }
        const SparseFactorOutcome fo = sparse->solver.factor(sparse->sys.csc());
        if (fo == SparseFactorOutcome::Ok) {
          scache.values = sparse->sys.values();
          scache.valid = true;
          recordLuFactorization();
          dx = sparse->solver.solve(f);
          haveDx = true;
        } else if (fo == SparseFactorOutcome::Singular) {
          scache.valid = false;
          return StepOutcome::Failed;
        }
        // Fallback: a guard tripped; fall through to the dense path (this
        // iteration and every later one — fellBack() is sticky).
      }
    }
    if (!haveDx) {
      num::MatrixD jac(n, n);
      mna.assemble(x, aopt, &jac, &f);
      // A poisoned iterate never recovers; bail to the halving loop now
      // instead of burning the remaining maxNewton iterations on NaNs.
      if (!allFinite(f)) return StepOutcome::Failed;
      if (cache.lu && cache.values.data() == jac.data()) {
        recordLuReuse();
      } else {
        try {
          if (FaultInjector::threadLocal().takeLuFailure())
            throw std::runtime_error("injected singular LU");
          cache.values = jac;
          cache.lu.emplace(std::move(jac));
        } catch (const std::runtime_error&) {
          cache.lu.reset();
          return StepOutcome::Failed;
        }
        recordLuFactorization();
      }
      dx = cache.lu->solve(f);
    }
    if (!allFinite(dx)) return StepOutcome::Failed;
    double maxDx = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double step = std::clamp(-dx[i], -1.0, 1.0);
      x[i] += step;
      maxDx = std::max(maxDx, std::abs(step));
    }
    if (maxDx < opts.vAbsTol) {
      if (sparse && !sparse->solver.fellBack())
        sparse->sys.assemble(x, aopt, false, &f);
      else
        mna.assemble(x, aopt, nullptr, &f);
      const double r = num::normInf(f);
      if (!std::isfinite(r)) return StepOutcome::Failed;
      if (r < opts.absTol) return StepOutcome::Converged;
    }
  }
  return StepOutcome::Failed;
}

}  // namespace

TransientResult transientAnalysis(const Mna& mna, const DcResult& op,
                                  const TransientOptions& opts) {
  AMSYN_SPAN("transient");
  static const auto cSolves =
      core::metrics::registry().counter("sim.tran_solves");
  core::metrics::add(cSolves);
  TransientResult res;
  if (!op.converged) {
    // A bad starting bias is infeasible data, not a programming error: the
    // optimizer sees an empty, incomplete waveform with the reason attached.
    res.status = op.status == core::EvalStatus::Ok ? core::EvalStatus::DcNoConvergence
                                                   : op.status;
    recordEvalFailure(res.status);
    return res;
  }
  res.time.push_back(0.0);
  res.states.push_back(op.x);

  std::map<std::size_t, CompanionState> companions;
  // Seed companion states from the DC solution (zero element currents).
  refreshCompanions(mna, op.x, opts.tStep, false, {}, opts.tStep, companions);

  double t = 0.0;
  num::VecD x = op.x;
  bool firstStep = true;
  JacobianCache jacCache;  // persists across timesteps: fixed-h sweeps of
                           // linear circuits factor once, then only solve
  std::unique_ptr<SparseNewtonContext> sparseCtx;
  if (useSparseSolver(mna.size()))
    sparseCtx = std::make_unique<SparseNewtonContext>(mna, "tran");
  SparseJacobianCache sparseJacCache;  // sparse twin, same lifetime

  while (t < opts.tStop - 1e-18) {
    double h = std::min(opts.tStep, opts.tStop - t);
    bool accepted = false;
    for (std::size_t attempt = 0; attempt <= opts.maxHalvings; ++attempt) {
      AssemblyOptions aopt;
      aopt.time = t + h;
      aopt.timestep = h;
      aopt.trapezoidal = opts.trapezoidal && !firstStep;
      aopt.gmin = 1e-12;
      aopt.companions = &companions;

      num::VecD xTry = x;
      const StepOutcome out =
          newtonStep(mna, sparseCtx.get(), sparseJacCache, xTry, aopt, opts, jacCache);
      if (out == StepOutcome::Budget) {
        res.completed = false;
        res.status = budgetStopStatus(opts.budget);
        recordEvalFailure(res.status);
        return res;  // partial waveform up to the last accepted point
      }
      if (out == StepOutcome::Converged) {
        std::map<std::size_t, CompanionState> next;
        refreshCompanions(mna, xTry, h, aopt.trapezoidal, companions, h, next);
        companions = std::move(next);
        x = std::move(xTry);
        t += h;
        res.time.push_back(t);
        res.states.push_back(x);
        static const auto cSteps =
            core::metrics::registry().counter("sim.tran_steps");
        core::metrics::add(cSteps);
        accepted = true;
        firstStep = false;
        break;
      }
      h *= 0.5;  // halve and retry
    }
    if (!accepted) {
      res.completed = false;
      res.status = core::EvalStatus::DcNoConvergence;
      recordEvalFailure(res.status);
      return res;  // give up; caller sees partial waveform
    }
  }
  res.completed = true;
  res.status = core::EvalStatus::Ok;
  return res;
}

std::vector<double> TransientResult::nodeWaveform(const Mna& mna,
                                                  const std::string& node) const {
  const auto id = mna.netlist().findNode(node);
  if (!id) throw std::invalid_argument("nodeWaveform: unknown node " + node);
  std::vector<double> out;
  out.reserve(states.size());
  for (const auto& x : states) out.push_back(mna.nodeVoltage(x, *id));
  return out;
}

}  // namespace amsyn::sim
