// DC operating-point and DC-transfer analyses: damped Newton-Raphson with
// gmin stepping and source stepping as continuation fallbacks (the standard
// SPICE convergence ladder).  Every entry point is total: a failed solve
// returns a DcResult carrying a core::EvalStatus reason code instead of
// throwing, so optimization loops treat bad candidates as infeasible data.
#pragma once

#include <optional>
#include <string>

#include "core/evalstatus.hpp"
#include "sim/mna.hpp"

namespace amsyn::sim {

struct DcOptions {
  std::size_t maxIterations = 200;
  double absTol = 1e-9;     ///< residual current tolerance (A)
  double vAbsTol = 1e-6;    ///< voltage update tolerance (V)
  double maxStep = 0.5;     ///< Newton update clamp per unknown (V or A)
  bool allowGminStepping = true;
  bool allowSourceStepping = true;
  /// Optional work budget (one Newton iteration = one unit) shared by all
  /// analyses of one candidate evaluation.  Exhaustion aborts the
  /// continuation ladder with EvalStatus::BudgetExhausted.
  core::EvalBudget* budget = nullptr;
};

struct DcResult {
  bool converged = false;
  /// Why the solve failed (Ok when converged).  SingularJacobian/NanDetected
  /// mean every continuation rung died that way; BudgetExhausted means the
  /// ladder was cut short.
  core::EvalStatus status = core::EvalStatus::DcNoConvergence;
  num::VecD x;               ///< solution vector (see Mna layout)
  std::size_t iterations = 0;
  std::string strategy;      ///< "newton", "gmin", or "source"
};

/// Solve for the DC operating point.
DcResult dcOperatingPoint(const Mna& mna, const DcOptions& opts = {});

/// Solve with a warm start (used by DC sweeps and the sizing loop).
DcResult dcOperatingPoint(const Mna& mna, const num::VecD& x0, const DcOptions& opts = {});

/// Starting vector with every node voltage at `nodeVoltage` and all branch
/// currents at zero.  Feedback-biased amplifier testbenches have a second,
/// latched DC solution near the rails; starting Newton mid-rail steers it to
/// the balanced operating point.
num::VecD flatStart(const Mna& mna, double nodeVoltage);

/// DC-transfer sweep result.  Non-converged sweep points are dropped from
/// the curve but counted, so consumers (outputSwing, measurement code) can
/// report "skipped of requested points unconverged" instead of guessing why
/// the curve is short.
struct DcTransferResult {
  std::vector<std::pair<double, double>> curve;  ///< {sweepValue, outputVoltage}
  std::size_t requested = 0;  ///< points asked for
  std::size_t skipped = 0;    ///< points dropped for non-convergence
  /// Ok, or BudgetExhausted when the sweep was cut short by the budget (the
  /// curve then holds the points solved before exhaustion).
  core::EvalStatus status = core::EvalStatus::Ok;
};

/// Sweep the value of a V/I source and record an output node voltage.
DcTransferResult dcTransfer(const Mna& mna, const std::string& sourceName, double from,
                            double to, std::size_t points, const std::string& outputNode,
                            const DcOptions& opts = {});

/// Total current drawn from a DC voltage source at the operating point
/// (positive = the source delivers current into the circuit from its +
/// terminal); used for power measurement.
double sourceCurrent(const Mna& mna, const DcResult& op, const std::string& sourceName);

}  // namespace amsyn::sim
