// DC operating-point and DC-transfer analyses: damped Newton-Raphson with
// gmin stepping and source stepping as continuation fallbacks (the standard
// SPICE convergence ladder).
#pragma once

#include <optional>
#include <string>

#include "sim/mna.hpp"

namespace amsyn::sim {

struct DcOptions {
  std::size_t maxIterations = 200;
  double absTol = 1e-9;     ///< residual current tolerance (A)
  double vAbsTol = 1e-6;    ///< voltage update tolerance (V)
  double maxStep = 0.5;     ///< Newton update clamp per unknown (V or A)
  bool allowGminStepping = true;
  bool allowSourceStepping = true;
};

struct DcResult {
  bool converged = false;
  num::VecD x;               ///< solution vector (see Mna layout)
  std::size_t iterations = 0;
  std::string strategy;      ///< "newton", "gmin", or "source"
};

/// Solve for the DC operating point.
DcResult dcOperatingPoint(const Mna& mna, const DcOptions& opts = {});

/// Solve with a warm start (used by DC sweeps and the sizing loop).
DcResult dcOperatingPoint(const Mna& mna, const num::VecD& x0, const DcOptions& opts = {});

/// Starting vector with every node voltage at `nodeVoltage` and all branch
/// currents at zero.  Feedback-biased amplifier testbenches have a second,
/// latched DC solution near the rails; starting Newton mid-rail steers it to
/// the balanced operating point.
num::VecD flatStart(const Mna& mna, double nodeVoltage);

/// Sweep the value of a V/I source and record an output node voltage.
/// Returns {sweepValue, outputVoltage} pairs; non-converged points omitted.
std::vector<std::pair<double, double>> dcTransfer(const Mna& mna,
                                                  const std::string& sourceName,
                                                  double from, double to, std::size_t points,
                                                  const std::string& outputNode);

/// Total current drawn from a DC voltage source at the operating point
/// (positive = the source delivers current into the circuit from its +
/// terminal); used for power measurement.
double sourceCurrent(const Mna& mna, const DcResult& op, const std::string& sourceName);

}  // namespace amsyn::sim
