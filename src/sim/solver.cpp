#include "sim/solver.hpp"

#include <atomic>
#include <cctype>
#include <map>
#include <mutex>
#include <string>

#include "core/context.hpp"

namespace amsyn::sim {

namespace {

// SolverMode <-> core::SolverKind: the preference is stored per
// ExecutionContext (core layer, below sim), so the two enums mirror each
// other and the sim layer maps at its boundary.
SolverMode fromKind(core::SolverKind k) {
  switch (k) {
    case core::SolverKind::Dense: return SolverMode::Dense;
    case core::SolverKind::Sparse: return SolverMode::Sparse;
    case core::SolverKind::Auto: break;
  }
  return SolverMode::Auto;
}

core::SolverKind toKind(SolverMode m) {
  switch (m) {
    case SolverMode::Dense: return core::SolverKind::Dense;
    case SolverMode::Sparse: return core::SolverKind::Sparse;
    case SolverMode::Auto: break;
  }
  return core::SolverKind::Auto;
}

struct SymbolicCache {
  std::mutex mu;
  std::map<core::cache::Digest128, std::shared_ptr<const num::SparseLuSymbolic>> map;
};

SymbolicCache& symbolicCache() {
  static SymbolicCache* c = new SymbolicCache;  // leaked: reachable at exit
  return *c;
}

}  // namespace

SolverMode solverMode() {
  // Context-resolved: code running without an installed scope sees the
  // ambient context, whose initial preference came from AMSYN_SOLVER —
  // exactly the old process-global behavior.  A job context's override
  // stays in that job.
  return fromKind(core::ExecutionContext::current().solverKind());
}

void setSolverMode(SolverMode m) {
  core::ExecutionContext::current().setSolverKind(toKind(m));
}

std::optional<SolverMode> parseSolverMode(std::string_view s) {
  std::string lower;
  lower.reserve(s.size());
  for (char c : s) lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  if (lower == "auto") return SolverMode::Auto;
  if (lower == "dense") return SolverMode::Dense;
  if (lower == "sparse") return SolverMode::Sparse;
  return std::nullopt;
}

const char* solverModeName(SolverMode m) {
  switch (m) {
    case SolverMode::Auto: return "auto";
    case SolverMode::Dense: return "dense";
    case SolverMode::Sparse: return "sparse";
  }
  return "auto";
}

bool useSparseSolver(std::size_t n) {
  switch (solverMode()) {
    case SolverMode::Dense: return false;
    case SolverMode::Sparse: return n > 1;  // 1x1 systems: nothing to win
    case SolverMode::Auto: return n >= kSparseAutoThreshold;
  }
  return false;
}

std::shared_ptr<const num::SparseLuSymbolic> lookupSymbolic(
    const core::cache::Digest128& key) {
  SymbolicCache& c = symbolicCache();
  std::lock_guard<std::mutex> lock(c.mu);
  auto it = c.map.find(key);
  return it == c.map.end() ? nullptr : it->second;
}

void publishSymbolic(const core::cache::Digest128& key,
                     std::shared_ptr<const num::SparseLuSymbolic> sym) {
  if (!sym) return;
  SymbolicCache& c = symbolicCache();
  std::lock_guard<std::mutex> lock(c.mu);
  c.map[key] = std::move(sym);  // last analysis wins (freshest pivot sequence)
}

const SparseCounters& sparseCounters() {
  static const SparseCounters ids = [] {
    auto& reg = core::metrics::registry();
    SparseCounters c;
    c.analyses = reg.counter("sim.sparse.analyses");
    c.refactors = reg.counter("sim.sparse.refactors");
    c.pivotDrift = reg.counter("sim.sparse.pivot_drift");
    c.denseFallbacks = reg.counter("sim.sparse.dense_fallbacks");
    c.symbolicHits = reg.counter("sim.sparse.symbolic_hits");
    c.symbolicMisses = reg.counter("sim.sparse.symbolic_misses");
    c.solves = reg.counter("sim.sparse.solves");
    return c;
  }();
  return ids;
}

template <typename T>
SparseFactorOutcome SparsePatternSolver<T>::factor(const num::CscMatrix<T>& a) {
  if (fallback_) return SparseFactorOutcome::Fallback;
  const SparseCounters& ctr = sparseCounters();
  if (!triedAdopt_) {
    triedAdopt_ = true;
    if (auto sym = lookupSymbolic(key_)) {
      lu_.adoptSymbolic(std::move(sym));
      core::metrics::add(ctr.symbolicHits);
    } else {
      core::metrics::add(ctr.symbolicMisses);
    }
  }
  const std::uint64_t a0 = lu_.analyzeCount();
  const std::uint64_t r0 = lu_.refactorCount();
  const std::uint64_t d0 = lu_.pivotDriftCount();
  const num::SparseLuStatus st = lu_.factor(a);
  core::metrics::add(ctr.analyses, lu_.analyzeCount() - a0);
  core::metrics::add(ctr.refactors, lu_.refactorCount() - r0);
  core::metrics::add(ctr.pivotDrift, lu_.pivotDriftCount() - d0);
  switch (st) {
    case num::SparseLuStatus::Ok:
      if (lu_.analyzeCount() != a0) publishSymbolic(key_, lu_.symbolic());
      return SparseFactorOutcome::Ok;
    case num::SparseLuStatus::Singular:
      return SparseFactorOutcome::Singular;
    case num::SparseLuStatus::ExcessFill:
    case num::SparseLuStatus::PivotGrowth:
      break;
  }
  fallback_ = true;
  core::metrics::add(ctr.denseFallbacks);
  return SparseFactorOutcome::Fallback;
}

template class SparsePatternSolver<double>;
template class SparsePatternSolver<std::complex<double>>;

}  // namespace amsyn::sim
