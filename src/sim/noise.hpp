// Small-signal noise analysis by the adjoint method: one transposed solve
// per frequency yields the transfer from *every* internal noise source to the
// output simultaneously.  Sources modeled: resistor thermal (4kT/R) and MOS
// channel thermal + 1/f (see circuit::mosNoisePsd).
#pragma once

#include <string>
#include <vector>

#include "core/evalstatus.hpp"
#include "sim/dc.hpp"
#include "sim/mna.hpp"

namespace amsyn::sim {

struct NoisePoint {
  double frequency = 0.0;
  double outputPsd = 0.0;        ///< V^2/Hz at the output node
  double inputReferredPsd = 0.0; ///< outputPsd / |gain|^2 (0 when no stimulus)
};

struct NoiseResult {
  /// Ok, or why the analysis stopped early (SingularJacobian,
  /// BudgetExhausted); `points` then holds the frequencies finished.
  core::EvalStatus status = core::EvalStatus::Ok;
  std::vector<NoisePoint> points;

  /// Total integrated output noise over the analyzed band (V rms), by
  /// trapezoidal integration of the PSD on the (log-spaced) grid.
  double integratedOutputRms() const;
};

/// Noise analysis at `outputNode` over the given frequencies.  Gain for input
/// referral is taken from the netlist's AC stimulus (if any source has a
/// nonzero acMag).  The optional budget is charged one unit per frequency;
/// a singular linearized system ends the analysis early via
/// NoiseResult::status instead of throwing.
NoiseResult noiseAnalysis(const Mna& mna, const DcResult& op, const std::string& outputNode,
                          const std::vector<double>& frequencies,
                          core::EvalBudget* budget = nullptr);

}  // namespace amsyn::sim
