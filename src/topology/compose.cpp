#include "topology/compose.hpp"

#include <cmath>
#include <map>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "circuit/canonical.hpp"
#include "core/context.hpp"
#include "knowledge/opamp_plans.hpp"
#include "sizing/builders.hpp"

namespace amsyn::topology {

using circuit::Process;
using sizing::Performance;
using sizing::SpecKind;
using sizing::SpecSet;

namespace {

constexpr double kTwoPi = 2.0 * M_PI;

}  // namespace

ComposedOpampModel::ComposedOpampModel(const OpampStructure& s, const Process& proc,
                                       double loadCap)
    : s_(s), proc_(proc), loadCap_(loadCap), vars_(s.variables()) {
  keyPrefix_.mixString("composed-opamp");
  keyPrefix_.mixString(s_.name());
  circuit::hashProcess(keyPrefix_, proc_);
  keyPrefix_.mixDouble(loadCap_);
}

std::optional<core::cache::Digest128> ComposedOpampModel::cacheKey(
    const std::vector<double>& x) const {
  core::cache::Hasher128 h = keyPrefix_;
  h.mixQuantizedDoubles(x, core::currentEvalCache().quantum());
  return h.digest();
}

Performance ComposedOpampModel::evaluate(const std::vector<double>& x) const {
  if (x.size() != vars_.size())
    throw std::invalid_argument("ComposedOpampModel(" + s_.name() + "): wrong dimension");

  // Block-slot parameters in stitch order (see OpampStructure::variables).
  std::size_t k = 0;
  const double i5x = x[k++];
  const double i7x = s_.secondStage ? x[k++] : 0.0;
  (void)i7x;  // two-stage currents re-derive from the mirror ratios below
  const double vov1x = x[k++];
  const double vov3x = x[k++];
  const double vov5x = x[k++];
  if (s_.secondStage) ++k;  // vov6: pinned by the zero-offset constraint
  const double vovc1x = s_.inputCascode ? x[k++] : 0.0;
  const double vovc3x = s_.loadCascode ? x[k++] : 0.0;
  const double vovc5x = s_.tailCascode ? x[k++] : 0.0;

  const bool nIn = s_.input == Polarity::Nmos;
  const double kpIn = nIn ? proc_.kpN : proc_.kpP;
  const double kpLoad = nIn ? proc_.kpP : proc_.kpN;
  const double lamN = proc_.lambdaN * 1e-6 / 2e-6;
  const double lamP = proc_.lambdaP * 1e-6 / 2e-6;
  const double lamIn = nIn ? lamN : lamP;
  const double lamLoad = nIn ? lamP : lamN;

  const ComposedGeometry g = composedGeometryFor(s_, x, proc_);
  const double l = g.l;

  // Per-block active-area contributions, folded in stitch order.  For the
  // legacy structures this reproduces OtaParams/TwoStageParams::activeArea
  // term for term.
  double area = 2.0 * g.w1 * l;
  if (s_.inputCascode) area += 2.0 * g.wc1 * l;
  area += 2.0 * g.w3 * l;
  if (s_.loadCascode) area += 2.0 * g.wc3 * l;
  area += g.w5 * l;
  if (s_.tailCascode) area += g.wc5 * l;
  if (s_.secondStage) {
    area += g.w6 * l;
    area += g.w7 * l;
    if (s_.sinkCascode) area += g.wc7 * l;
  }
  area += g.w8 * l;
  if (s_.secondStage) area += sizing::opampCapArea(g.cc);

  Performance perf;

  if (!s_.secondStage) {
    // --- single-stage family: the OTA equations in electrical coordinates,
    // with each cascode contributing an output-conductance knock-down
    // factor (lam_c * vov_c / 2 — the cascode's intrinsic gain inverse), an
    // extra headroom term, and (input cascode) an extra pole.  Absent
    // blocks contribute the exact multiplicative/additive identities, so
    // the legacy five-transistor OTA replays OtaEquationModel bit-for-bit.
    const double i5 = i5x, vov1 = vov1x, vov3 = vov3x, vov5 = vov5x;

    const double gm1 = i5 / vov1;
    const double fIn = s_.inputCascode ? lamIn * vovc1x / 2.0 : 1.0;
    const double fLoad = s_.loadCascode ? lamLoad * vovc3x / 2.0 : 1.0;
    const double fN = nIn ? fIn : fLoad;
    const double fP = nIn ? fLoad : fIn;
    const double gds = (lamN * fN + lamP * fP) * i5 / 2.0;
    const double av = gm1 / gds;
    const double ugf = gm1 / (kTwoPi * loadCap_);

    // Mirror pole at the diode node (~2 cgs3 at conductance gm3).
    const double gm3 = i5 / vov3;
    const double w3 = std::max(proc_.minW, 2.0 * (i5 / 2.0) * l / (kpLoad * vov3 * vov3));
    const double cgs3 = (2.0 / 3.0) * proc_.cox * w3 * l;
    const double pMirror = gm3 / (kTwoPi * 2.0 * cgs3);
    double pm = 180.0 - 90.0 - std::atan(ugf / pMirror) * 180.0 / M_PI;
    if (s_.inputCascode) {
      // Cascode source-node pole: gm_c over the cascode's own gate cap.
      const double gmc1 = i5 / vovc1x;
      const double cgsc1 = (2.0 / 3.0) * proc_.cox * g.wc1 * l;
      const double pCasc = gmc1 / (kTwoPi * std::max(cgsc1, 1e-18));
      pm -= std::atan(ugf / pCasc) * 180.0 / M_PI;
    }

    // Headroom: each stacked cascode eats its overdrive out of the swing.
    double swing = proc_.vdd - vov3 - vov5 - vov1;
    if (s_.inputCascode) swing -= vovc1x;
    if (s_.loadCascode) swing -= vovc3x;
    if (s_.tailCascode) swing -= vovc5x;

    perf["gain_db"] = 20.0 * std::log10(av);
    perf["ugf"] = ugf;
    perf["pm"] = pm;
    perf["slew"] = i5 / loadCap_;
    perf["power"] = proc_.vdd * (i5 + 10e-6);
    perf["area"] = area;
    perf["swing"] = std::max(0.0, swing);
    const double psd = 2.0 * (16.0 / 3.0) * proc_.kT() / gm1 * (1.0 + gm3 / gm1);
    perf["noise_nv"] = std::sqrt(psd) * 1e9;
    return perf;
  }

  // --- two-stage family: the geometry-path equations (see
  // sizing::evaluateTwoStageGeometry), composed per block.  Currents and
  // overdrives re-derive from the stitched device sizes so the model tracks
  // exactly what buildComposedOpamp will produce; cascode blocks multiply
  // their branch's output conductance by lam_c*vov_c/2, add their overdrive
  // to the headroom bill, and (input cascode) append one pole; the nulling
  // resistor moves the Miller zero.  With every optional block absent this
  // is evaluateTwoStageGeometry(toParams(x)) bit-for-bit.
  const double i5 = g.ibias * g.w5 / g.w8;
  const double i7 = g.ibias * g.w7 / g.w8;

  const double vov1 = std::sqrt(i5 * l / (kpIn * g.w1));
  const double vov3 = std::sqrt(i5 * l / (kpLoad * g.w3));
  const double vov6 = std::sqrt(2.0 * i7 * l / (kpLoad * g.w6));
  const double vov7 = std::sqrt(2.0 * i7 * l / (kpIn * g.w7));

  const double gm1 = i5 / vov1;
  const double gm6 = 2.0 * i7 / vov6;

  const double vovc1 = s_.inputCascode ? std::sqrt(i5 * l / (kpIn * g.wc1)) : 0.0;
  const double vovc3 = s_.loadCascode ? std::sqrt(i5 * l / (kpLoad * g.wc3)) : 0.0;
  const double vovc7 = s_.sinkCascode ? std::sqrt(2.0 * i7 * l / (kpIn * g.wc7)) : 0.0;

  const double fIn = s_.inputCascode ? lamIn * vovc1 / 2.0 : 1.0;
  const double fLoad = s_.loadCascode ? lamLoad * vovc3 / 2.0 : 1.0;
  const double fN1 = nIn ? fIn : fLoad;
  const double fP1 = nIn ? fLoad : fIn;
  const double av1 = gm1 / ((lamN * fN1 + lamP * fP1) * i5 / 2.0);

  // Stage 2: the sink is the input polarity, the driver the complement.
  const double fSink = s_.sinkCascode ? lamIn * vovc7 / 2.0 : 1.0;
  const double fN2 = nIn ? fSink : 1.0;
  const double fP2 = nIn ? 1.0 : fSink;
  const double av2 = gm6 / ((lamN * fN2 + lamP * fP2) * i7);

  const double gbw = gm1 / (kTwoPi * g.cc);
  const double p2 = gm6 / (kTwoPi * loadCap_);
  const double gm3 = i5 / vov3;
  const double cgs3 = (2.0 / 3.0) * proc_.cox * g.w3 * l;
  const double p3 = gm3 / (kTwoPi * 2.0 * std::max(cgs3, 1e-18));

  // Optional cascode pole on the first stage's folded node.
  double pCasc = 0.0;
  if (s_.inputCascode) {
    const double gmc1 = i5 / vovc1;
    const double cgsc1 = (2.0 / 3.0) * proc_.cox * g.wc1 * l;
    pCasc = gmc1 / (kTwoPi * std::max(cgsc1, 1e-18));
  }

  // Compensation zero.  Plain Miller keeps the legacy RHP zero z = gm6 /
  // (2 pi Cc); the nulling resistor shifts it through 1/z = 2 pi Cc
  // (1/gm6 - Rz) — negative (LHP, phase-recovering) once Rz > 1/gm6.
  const bool nulled = s_.comp == Compensation::MillerNulled;
  const double z = nulled ? 0.0 : gm6 / (kTwoPi * g.cc);
  const double zInv = nulled ? kTwoPi * g.cc * (1.0 / gm6 - g.rz) : 0.0;

  const double av0 = av1 * av2;
  const double p1 = gbw / std::max(av0, 1.0);  // dominant pole (Hz)
  auto magnitude = [&](double f) {
    const double num = nulled ? 1.0 + (f * zInv) * (f * zInv) : 1.0 + (f / z) * (f / z);
    double den = (1.0 + (f / p1) * (f / p1)) * (1.0 + (f / p2) * (f / p2)) *
                 (1.0 + (f / p3) * (f / p3));
    if (s_.inputCascode) den *= 1.0 + (f / pCasc) * (f / pCasc);
    return av0 * std::sqrt(num / den);
  };
  double lo = p1, hi = 1e13;
  for (int it = 0; it < 80; ++it) {
    const double mid = std::sqrt(lo * hi);
    (magnitude(mid) > 1.0 ? lo : hi) = mid;
  }
  const double ugf = std::sqrt(lo * hi);

  double pm = 180.0;
  pm -= std::atan(ugf / p1) * 180.0 / M_PI;
  pm -= std::atan(ugf / p2) * 180.0 / M_PI;
  pm -= (nulled ? std::atan(ugf * zInv) : std::atan(ugf / z)) * 180.0 / M_PI;
  pm -= std::atan(ugf / p3) * 180.0 / M_PI;
  if (s_.inputCascode) pm -= std::atan(ugf / pCasc) * 180.0 / M_PI;

  double swing = proc_.vdd - vov6 - vov7 -
                 0.5 * (std::abs(proc_.vt0N) - 0.75 + std::abs(proc_.vt0P) - 0.85);
  if (s_.sinkCascode) swing -= vovc7;

  const double psd = 2.0 * (16.0 / 3.0) * proc_.kT() / gm1 * (1.0 + gm3 / gm1);

  perf["gain_db"] = 20.0 * std::log10(av1 * av2);
  perf["ugf"] = ugf;
  perf["pm"] = pm;
  perf["slew"] = std::min(i5 / g.cc, i7 / loadCap_);
  perf["power"] = proc_.vdd * (i5 + i7 + g.ibias);
  perf["area"] = area;
  perf["swing"] = std::max(0.0, swing);
  perf["noise_nv"] = std::sqrt(psd) * 1e9;
  return perf;
}

namespace {

/// Largest grid g >= 2 with g^dim <= ~4k model evaluations: generated
/// entries trade per-axis resolution for bounded library-construction cost
/// (the legacy entries keep their historical 5/4 grids so their bounds stay
/// bit-identical to the hand-written library's).
std::size_t adaptiveGrid(std::size_t dim) {
  std::size_t g = 2;
  for (std::size_t cand = 3; cand <= 8; ++cand) {
    double evals = 1.0;
    for (std::size_t i = 0; i < dim; ++i) evals *= static_cast<double>(cand);
    if (evals <= 4096.0) g = cand;
  }
  return g;
}

int cascodeCount(const OpampStructure& s) {
  return int(s.inputCascode) + int(s.loadCascode) + int(s.tailCascode) +
         int(s.sinkCascode);
}

std::vector<HeuristicRule> rulesFor(const OpampStructure& s) {
  // Family rules are shared with the hand-written cells: a composed
  // two-stage scores the two-stage rules, a composed single-stage the OTA
  // rules.  Block-specific rules ride on top.
  std::vector<HeuristicRule> rules =
      s.secondStage ? legacyTwoStageRules() : legacyOtaRules();
  if (const int k = cascodeCount(s)) {
    rules.push_back({"cascodes raise achievable gain but cost headroom",
                     [k](const SpecSet& specs) {
                       double score = 0.0;
                       for (const auto& sp : specs.specs()) {
                         if (sp.performance == "gain_db" &&
                             sp.kind == SpecKind::GreaterEqual && sp.bound > 75.0)
                           score += 1.0 * k;
                         if (sp.performance == "swing" &&
                             sp.kind == SpecKind::GreaterEqual)
                           score -= 0.5 * k;
                       }
                       return score;
                     }});
  }
  if (s.comp == Compensation::MillerNulled) {
    rules.push_back({"nulling resistor recovers phase margin",
                     [](const SpecSet& specs) {
                       double score = 0.0;
                       for (const auto& sp : specs.specs())
                         if (sp.performance == "pm" && sp.kind == SpecKind::GreaterEqual &&
                             sp.bound >= 70.0)
                           score += 1.0;
                       return score;
                     }});
  }
  if (s.isLegacyOta() || s.isLegacyTwoStage()) {
    // Provenance: the reproduced hand-written cells are silicon-validated
    // references; prefer them over an equal-scoring generated sibling (the
    // name tie-break alone would rank "gen/..." first).
    rules.push_back({"hand-validated reference cell",
                     [](const SpecSet&) { return 0.05; }});
  }
  return rules;
}

/// Register every generated (non-legacy) structure's netlist builder.  The
/// registry pre-populates the legacy builders; the composed instances of
/// the legacy cells deliberately leave those untouched (they are
/// byte-identical anyway, differential-tested).
void registerGeneratedBuilders() {
  static std::once_flag flag;
  std::call_once(flag, [] {
    auto& reg = sizing::NetlistBuilderRegistry::instance();
    for (const OpampStructure& s : enumerateOpampStructures()) {
      if (s.isLegacyOta() || s.isLegacyTwoStage()) continue;
      reg.add(s.name(), [s](const std::vector<double>& x, const Process& proc,
                            const sizing::OpampTestbench& tb) {
        return buildComposedOpamp(s, x, proc, tb);
      });
    }
  });
}

TopologyLibrary buildGeneratedLibrary(const Process& proc, double loadCap) {
  TopologyLibrary lib;
  for (const OpampStructure& s : enumerateOpampStructures()) {
    TopologyEntry e;
    e.name = s.name();
    e.model = std::make_shared<ComposedOpampModel>(s, proc, loadCap);
    // Legacy grids for the reproduced cells (bounds then match the legacy
    // library bit-for-bit, since the models do); adaptive elsewhere.
    const std::size_t grid = s.isLegacyOta()        ? 5
                             : s.isLegacyTwoStage() ? 4
                                                    : adaptiveGrid(s.variables().size());
    e.bounds = boundsBySampling(*e.model, grid);
    e.rules = rulesFor(s);
    e.complexity = s.deviceCount();
    lib.add(std::move(e));
  }
  return lib;
}

}  // namespace

TopologyLibrary generatedAmplifierLibrary(const Process& proc, double loadCap) {
  registerGeneratedBuilders();
  // Memoize per (process, loadCap): bounds sampling over the full space is
  // ~10^5 model evaluations, too much to repeat on every flow start.
  // Keyed by content digest, not address, so corner/perturbed processes get
  // their own libraries; models own a Process copy, so a cached library
  // outliving the caller's process instance is safe.
  core::cache::Hasher128 h;
  circuit::hashProcess(h, proc);
  h.mixDouble(loadCap);
  const auto key = h.digest();

  static std::mutex mu;
  static std::map<core::cache::Digest128, TopologyLibrary> memo;
  {
    std::lock_guard<std::mutex> lock(mu);
    auto it = memo.find(key);
    if (it != memo.end()) return it->second;
  }
  TopologyLibrary lib = buildGeneratedLibrary(proc, loadCap);
  std::lock_guard<std::mutex> lock(mu);
  return memo.emplace(key, std::move(lib)).first->second;
}

std::optional<std::vector<double>> composedPlanSeed(const OpampStructure& s,
                                                    const SpecSet& specs,
                                                    const Process& proc, double loadCap) {
  const auto planIn = knowledge::opampPlanInputs(specs, loadCap);
  if (!planIn) return std::nullopt;

  std::vector<double> shared;  // family coordinates, legacy variable order
  if (s.secondStage) {
    const auto plan = knowledge::twoStageOpampPlan();
    const auto res = plan.execute(proc, *planIn);
    if (!res.success) return std::nullopt;
    shared = knowledge::extractTwoStageDesign(res.context);  // i5,i7,vov1,vov3,vov5,vov6,cc
  } else {
    const auto plan = knowledge::otaPlan();
    const auto res = plan.execute(proc, *planIn);
    if (!res.success) return std::nullopt;
    shared = knowledge::extractOtaDesign(res.context);  // i5,vov1,vov3,vov5
  }

  // Scatter the plan outputs into the composed stitch order; cascode
  // overdrives and the nulling ratio take the block defaults (mid-box,
  // deterministic).
  std::vector<double> x;
  std::size_t k = 0;
  x.push_back(shared[k++]);                     // i5
  if (s.secondStage) x.push_back(shared[k++]);  // i7
  x.push_back(shared[k++]);                     // vov1
  x.push_back(shared[k++]);                     // vov3
  x.push_back(shared[k++]);                     // vov5
  if (s.secondStage) x.push_back(shared[k++]);  // vov6
  if (s.inputCascode) x.push_back(0.20);        // vovc1
  if (s.loadCascode) x.push_back(0.25);         // vovc3
  if (s.tailCascode) x.push_back(0.25);         // vovc5
  if (s.sinkCascode) x.push_back(0.25);         // vovc7
  if (s.secondStage) x.push_back(shared[k++]);  // cc
  if (s.comp == Compensation::MillerNulled) x.push_back(1.3);  // rzk
  return x;
}

}  // namespace amsyn::topology
