#include "topology/joint.hpp"

#include <algorithm>
#include <cmath>

#include "numeric/anneal.hpp"
#include "numeric/optimize.hpp"

namespace amsyn::topology {

namespace {
double geneToValue(double g, const sizing::DesignVariable& v) {
  g = std::clamp(g, 0.0, 1.0);
  if (v.logScale && v.lo > 0) return v.lo * std::pow(v.hi / v.lo, g);
  return v.lo + g * (v.hi - v.lo);
}
}  // namespace

JointResult jointSelectAndSize(const TopologyLibrary& lib, const sizing::SpecSet& specs,
                               const JointOptions& opts) {
  const auto& entries = lib.entries();
  if (entries.empty()) throw std::invalid_argument("jointSelectAndSize: empty library");

  std::vector<std::unique_ptr<sizing::CostFunction>> costs;
  std::vector<std::vector<double>> genes;  // per-topology unit-cube state
  for (const auto& e : entries) {
    costs.push_back(std::make_unique<sizing::CostFunction>(*e.model, specs, opts.cost));
    genes.emplace_back(e.model->dimension(), 0.5);
  }

  JointResult result;

  struct State {
    std::size_t topo = 0;
  } state, prev, best;
  std::vector<std::vector<double>> prevGenes = genes, bestGenes = genes;

  auto currentCost = [&]() {
    ++result.evaluations;
    const auto& vars = entries[state.topo].model->variables();
    std::vector<double> x(vars.size());
    for (std::size_t i = 0; i < vars.size(); ++i)
      x[i] = geneToValue(genes[state.topo][i], vars[i]);
    return (*costs[state.topo])(x);
  };

  bool lastWasSwitch = false;
  num::AnnealProblem prob;
  prob.cost = currentCost;
  prob.propose = [&](num::Rng& rng) {
    prev = state;
    prevGenes[state.topo] = genes[state.topo];
    if (entries.size() > 1 && rng.chance(opts.topologySwitchProbability)) {
      std::size_t next = rng.index(entries.size());
      while (next == state.topo) next = rng.index(entries.size());
      state.topo = next;
      lastWasSwitch = true;
    } else {
      auto& g = genes[state.topo];
      const std::size_t i = rng.index(g.size());
      g[i] = std::clamp(g[i] + rng.normal(0.0, 0.12), 0.0, 1.0);
      lastWasSwitch = false;
    }
  };
  prob.undo = [&] {
    if (!lastWasSwitch) genes[state.topo] = prevGenes[state.topo];
    state = prev;
  };
  prob.snapshot = [&] {
    best = state;
    bestGenes = genes;
  };

  num::AnnealOptions aopts;
  aopts.seed = opts.seed;
  aopts.movesPerStage = opts.movesPerStage;
  aopts.coolingRate = opts.coolingRate;
  const auto stats = num::anneal(prob, aopts);
  (void)stats;

  // Count accepted switches approximately by replaying is overkill; report
  // whether the winning topology differs from the start instead.
  result.topologySwitches = best.topo != 0 ? 1 : 0;

  // Local refinement of the winning topology's sizing (the annealer's last
  // accepted point is rarely the basin minimum).
  {
    const auto& vars = entries[best.topo].model->variables();
    num::BoxBounds unit{std::vector<double>(vars.size(), 0.0),
                        std::vector<double>(vars.size(), 1.0)};
    num::NelderMeadOptions nm;
    nm.maxEvaluations = 400;
    nm.initialStep = 0.05;
    const auto refined = num::nelderMead(
        [&](const std::vector<double>& g) {
          std::vector<double> xx(vars.size());
          for (std::size_t i = 0; i < vars.size(); ++i) xx[i] = geneToValue(g[i], vars[i]);
          ++result.evaluations;
          return (*costs[best.topo])(xx);
        },
        bestGenes[best.topo], unit, nm);
    std::vector<double> xx(vars.size());
    for (std::size_t i = 0; i < vars.size(); ++i)
      xx[i] = geneToValue(refined.x[i], vars[i]);
    if ((*costs[best.topo])(xx) <= (*costs[best.topo])([&] {
          std::vector<double> cur(vars.size());
          for (std::size_t i = 0; i < vars.size(); ++i)
            cur[i] = geneToValue(bestGenes[best.topo][i], vars[i]);
          return cur;
        }()))
      bestGenes[best.topo] = refined.x;
  }

  const auto& vars = entries[best.topo].model->variables();
  std::vector<double> x(vars.size());
  for (std::size_t i = 0; i < vars.size(); ++i)
    x[i] = geneToValue(bestGenes[best.topo][i], vars[i]);

  result.topology = entries[best.topo].name;
  result.x = x;
  const auto detail = costs[best.topo]->detailed(x);
  result.performance = detail.performance;
  result.cost = detail.cost;
  result.feasible = detail.feasible;
  return result;
}

}  // namespace amsyn::topology
