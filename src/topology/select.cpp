#include "topology/select.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/trace.hpp"
#include "sim/stats.hpp"

namespace amsyn::topology {

using sizing::Spec;
using sizing::SpecKind;

std::vector<Candidate> ruleBasedSelect(const TopologyLibrary& lib,
                                       const sizing::SpecSet& specs) {
  std::vector<Candidate> out;
  for (const auto& e : lib.entries()) {
    Candidate c;
    c.name = e.name;
    for (const auto& r : e.rules) {
      const double s = r.score(specs);
      if (s != 0.0) {
        c.score += s;
        c.reasons.push_back(r.description + " (" + (s > 0 ? "+" : "") + std::to_string(s) +
                            ")");
      }
    }
    // Prefer structurally simpler circuits on near-ties.
    c.score -= 0.01 * e.complexity;
    out.push_back(std::move(c));
  }
  // Tie-break equal scores by name: std::sort is unstable and candidate
  // order feeds straight into which topology gets sized first, so without a
  // total order the pick could differ across std-lib implementations.
  std::sort(out.begin(), out.end(), [](const Candidate& a, const Candidate& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.name < b.name;
  });
  return out;
}

std::vector<Candidate> intervalSelect(const TopologyLibrary& lib,
                                      const sizing::SpecSet& specs) {
  std::vector<Candidate> out;
  for (const auto& e : lib.entries()) {
    Candidate c;
    c.name = e.name;
    c.score = std::numeric_limits<double>::infinity();  // min margin
    bool nanMargin = false;
    for (const Spec& s : specs.specs()) {
      if (s.isObjective()) continue;
      auto it = e.bounds.find(s.performance);
      if (it == e.bounds.end()) {
        c.feasible = false;
        c.reasons.push_back("no bound for " + s.performance);
        continue;
      }
      const auto& b = it->second;
      double margin;  // normalized distance from the bound into the interval
      if (s.kind == SpecKind::GreaterEqual) {
        margin = (b.hi() - s.bound) / s.normalization();
      } else {
        margin = (s.bound - b.lo()) / s.normalization();
      }
      if (margin < 0.0) {
        c.feasible = false;
        c.reasons.push_back(s.describe() + " outside achievable [" +
                            std::to_string(b.lo()) + ", " + std::to_string(b.hi()) + "]");
      }
      // std::min would silently discard a NaN in its second argument, so the
      // margin must be checked before it enters the reduction.
      if (std::isnan(margin))
        nanMargin = true;
      else
        c.score = std::min(c.score, margin);
    }
    if (nanMargin || std::isnan(c.score)) {
      // A NaN margin (NaN bound or spec normalization) used to be silently
      // clamped to 0.0 — a neutral score that could rank the entry above
      // legitimate candidates, and a strict-weak-ordering violation in the
      // sort below.  It is infeasible data: rank it below every real score.
      c.feasible = false;
      c.score = -std::numeric_limits<double>::infinity();
      c.reasons.push_back("nan_detected: margin evaluation produced NaN");
      sim::recordEvalFailure(core::EvalStatus::NanDetected);
    } else if (!std::isfinite(c.score)) {
      c.score = 0.0;  // no constraint consulted: neutral
    }
    out.push_back(std::move(c));
  }
  std::sort(out.begin(), out.end(), [](const Candidate& a, const Candidate& b) {
    if (a.feasible != b.feasible) return a.feasible;
    if (a.score != b.score) return a.score > b.score;
    return a.name < b.name;  // deterministic order on margin ties
  });
  return out;
}

SelectAndSizeResult selectAndSize(const TopologyLibrary& lib, const sizing::SpecSet& specs,
                                  const sizing::SynthesisOptions& opts,
                                  std::size_t maxSizingCandidates) {
  AMSYN_SPAN("select_and_size");
  SelectAndSizeResult result;

  // Interval filter first (cheap, sound), then order survivors by rules.
  const auto byInterval = intervalSelect(lib, specs);
  const auto byRules = ruleBasedSelect(lib, specs);
  auto ruleRank = [&](const std::string& name) {
    for (std::size_t i = 0; i < byRules.size(); ++i)
      if (byRules[i].name == name) return i;
    return byRules.size();
  };

  std::vector<Candidate> order;
  for (const auto& c : byInterval)
    if (c.feasible) order.push_back(c);
  std::sort(order.begin(), order.end(), [&](const Candidate& a, const Candidate& b) {
    const std::size_t ra = ruleRank(a.name), rb = ruleRank(b.name);
    if (ra != rb) return ra < rb;
    return a.name < b.name;  // both unranked by rules: order by name
  });
  result.consideredOrder = order;

  std::size_t sized = 0;
  for (const auto& c : order) {
    if (maxSizingCandidates != 0 && sized++ >= maxSizingCandidates) break;
    const auto& entry = lib.byName(c.name);
    const auto res = sizing::synthesize(*entry.model, specs, opts);
    if (res.feasible) {
      result.success = true;
      result.topology = c.name;
      result.sizing = res;
      return result;
    }
  }
  return result;
}

}  // namespace amsyn::topology
