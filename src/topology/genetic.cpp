#include "topology/genetic.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "core/context.hpp"
#include "core/metrics.hpp"
#include "core/parallel.hpp"
#include "core/surrogate.hpp"
#include "core/trace.hpp"
#include "numeric/rng.hpp"
#include "sim/stats.hpp"

namespace amsyn::topology {

namespace {

/// Map a unit gene to a design value, respecting log scaling.
double geneToValue(double g, const sizing::DesignVariable& v) {
  g = std::clamp(g, 0.0, 1.0);
  if (v.logScale && v.lo > 0) return v.lo * std::pow(v.hi / v.lo, g);
  return v.lo + g * (v.hi - v.lo);
}

struct Individual {
  std::size_t topo = 0;
  std::vector<double> genes;  // unit cube, length = max model dimension
  double fitness = 0.0;       // negated cost: larger is better
};

}  // namespace

GeneticResult geneticSelectAndSize(const TopologyLibrary& lib, const sizing::SpecSet& specs,
                                   const GeneticOptions& opts) {
  AMSYN_SPAN("genetic_select");
  num::Rng rng(opts.seed);
  const auto& entries = lib.entries();
  if (entries.empty()) throw std::invalid_argument("geneticSelectAndSize: empty library");

  std::size_t maxDim = 0;
  std::vector<std::unique_ptr<sizing::CostFunction>> costs;
  for (const auto& e : entries) {
    maxDim = std::max(maxDim, e.model->dimension());
    costs.push_back(std::make_unique<sizing::CostFunction>(*e.model, specs, opts.cost));
  }

  GeneticResult result;

  auto decode = [&](const Individual& ind) {
    const auto& vars = entries[ind.topo].model->variables();
    std::vector<double> x(vars.size());
    for (std::size_t i = 0; i < vars.size(); ++i) x[i] = geneToValue(ind.genes[i], vars[i]);
    return x;
  };
  // Fitness evaluation is the hot loop (the paper's evaluation-throughput
  // bottleneck) and is embarrassingly parallel: genomes are bred serially
  // from one RNG stream, then the whole batch is scored concurrently.
  // Scoring draws no random numbers, so the RNG stream — and therefore the
  // result — is bit-identical to a fully serial run at any thread count.
  // Duplicate genomes are common late in a run (elitism copies the best
  // individual forward, tournament selection re-breeds converged parents);
  // CostFunction::detailed routes through sizing::safeEvaluate, which
  // consults the process-wide evaluation cache (core/evalcache.hpp), so a
  // re-scored duplicate costs a hash lookup instead of a model evaluation.
  // Error-capture mode: CostFunction::detailed is already total, but a
  // malformed custom model can still throw from decode (bad variable list)
  // or from outside the cost containment.  Capturing per index keeps one
  // poisoned individual from aborting its siblings — their scores stay
  // bit-identical to a failure-free run.
  auto evaluateBatch = [&](std::vector<Individual>& batch, std::size_t first) {
    const std::size_t n = batch.size() - first;
    // Surrogate ordering: pre-rank the offspring by predicted cost so the
    // parallel claim sequence (parallelFor hands out loop indices in claim
    // order) starts with the most promising candidates.  Each result still
    // lands in its individual's own slot and every reduction below scans
    // population order, so the permutation is pure scheduling — scores and
    // the winner are bit-identical to the unranked run.
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    if (core::currentSurrogateStore().mode() != core::surrogate::Mode::Off) {
      std::vector<std::optional<double>> scores(n);
      bool any = false;
      for (std::size_t i = 0; i < n; ++i) {
        try {
          scores[i] = costs[batch[first + i].topo]->predictedCost(decode(batch[first + i]));
        } catch (...) {
          // A malformed custom model throws from decode; ranking must stay
          // as robust as scoring, so it just leaves the slot unscored.
        }
        any = any || scores[i].has_value();
      }
      if (any) {
        order = core::surrogate::orderByScore(scores);
        core::currentSurrogateStore().noteOrderedBatch();
      }
    }
    const auto errs = core::parallelForCaptured(n, [&](std::size_t i) {
      Individual& ind = batch[first + order[i]];
      ind.fitness = -(*costs[ind.topo])(decode(ind));
      if (std::isnan(ind.fitness)) {  // belt and suspenders: never let NaN
        ind.fitness = -std::numeric_limits<double>::infinity();  // win a tournament
        sim::recordEvalFailure(core::EvalStatus::NanDetected);
      }
    });
    for (std::size_t i = 0; i < errs.size(); ++i) {
      if (!errs[i]) continue;
      batch[first + order[i]].fitness = -std::numeric_limits<double>::infinity();
      // bad_alloc classifies as out_of_memory (never retried upstream),
      // anything else internal_error.
      sim::recordEvalFailure(core::classifyException(errs[i]));
    }
    result.evaluations += batch.size() - first;
    static const auto cEvals =
        core::metrics::registry().counter("genetic.evaluations");
    core::metrics::add(cEvals, batch.size() - first);
  };

  // Random initial population spread across all topologies.
  std::vector<Individual> pop(opts.populationSize);
  for (std::size_t i = 0; i < pop.size(); ++i) {
    pop[i].topo = i % entries.size();
    pop[i].genes.resize(maxDim);
    for (double& g : pop[i].genes) g = rng.uniform();
  }
  evaluateBatch(pop, 0);

  auto tournament = [&]() -> const Individual& {
    const Individual* best = &pop[rng.index(pop.size())];
    for (std::size_t k = 1; k < opts.tournamentSize; ++k) {
      const Individual& c = pop[rng.index(pop.size())];
      if (c.fitness > best->fitness) best = &c;
    }
    return *best;
  };

  Individual bestEver = *std::max_element(
      pop.begin(), pop.end(),
      [](const Individual& a, const Individual& b) { return a.fitness < b.fitness; });

  static const auto cGenerations =
      core::metrics::registry().counter("genetic.generations");
  for (std::size_t gen = 0; gen < opts.generations; ++gen) {
    core::metrics::add(cGenerations);
    std::vector<Individual> next;
    next.reserve(pop.size());
    next.push_back(bestEver);  // elitism (already scored)
    // Breed serially: selection, crossover, and mutation consume the RNG
    // stream in a fixed order.  Tournaments read only the previous
    // generation's fitness, so deferring the children's scores to the batch
    // below changes nothing.
    while (next.size() < pop.size()) {
      Individual child = tournament();
      const Individual& other = tournament();
      // Crossover: uniform gene mixing; the topology gene follows the
      // fitter parent (already `child`).
      if (rng.chance(opts.crossoverRate)) {
        for (std::size_t i = 0; i < maxDim; ++i)
          if (rng.chance(0.5)) child.genes[i] = other.genes[i];
      }
      // Mutation.
      for (double& g : child.genes)
        if (rng.chance(opts.mutationRate))
          g = std::clamp(g + rng.normal(0.0, opts.mutationSigma), 0.0, 1.0);
      if (rng.chance(opts.topologyMutationRate))
        child.topo = rng.index(entries.size());
      next.push_back(std::move(child));
    }
    evaluateBatch(next, 1);  // score this generation's children in parallel
    for (std::size_t i = 1; i < next.size(); ++i)
      if (next[i].fitness > bestEver.fitness) bestEver = next[i];
    pop = std::move(next);
  }

  for (const auto& ind : pop) result.populationShare[entries[ind.topo].name] += 1.0;
  for (auto& [k, v] : result.populationShare) v /= static_cast<double>(pop.size());

  result.topology = entries[bestEver.topo].name;
  result.x = decode(bestEver);
  const auto detail = costs[bestEver.topo]->detailed(result.x);
  result.performance = detail.performance;
  result.cost = detail.cost;
  result.feasible = detail.feasible;
  return result;
}

}  // namespace amsyn::topology
