// Composition engine over the functional-block library (topology/blocks.hpp):
// for every electrically valid OpampStructure it derives
//   * a composed equation model — per-block contributions to gain, ugf, pm,
//     slew, power, area, swing and noise, in the spirit of the hierarchical
//     performance-equation-library literature.  For the two legacy
//     structures the composed model replays the hand-written
//     OtaEquationModel / TwoStageEquationModel arithmetic bit-for-bit
//     (differential-tested in tests/composed_topology_test.cpp);
//   * derived FeasibilityBounds (boundsBySampling over an adaptive grid);
//   * heuristic selection rules (the legacy rule sets for the reproduced
//     cells, block-derived rules for the rest);
//   * a registered netlist builder (sizing::NetlistBuilderRegistry) that
//     stitches the block sub-netlists (buildComposedOpamp);
//   * a knowledge-plan seed mapping the opamp design plans onto the
//     composed variable vector (composedPlanSeed).
//
// Everything here is deterministic: candidate order follows the block
// enumeration, bounds are sampled serially, and models/builders are pure
// functions — thread count, eval-cache state, and run count do not change a
// single bit of the library or of selection over it.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "circuit/process.hpp"
#include "sizing/perfmodel.hpp"
#include "sizing/spec.hpp"
#include "topology/blocks.hpp"
#include "topology/library.hpp"

namespace amsyn::topology {

/// Composed equation-based performance model for one block structure.
/// Variables are the structure's variables(); performances are the standard
/// amplifier set (gain_db, ugf, pm, slew, power, area, swing, noise_nv).
class ComposedOpampModel : public sizing::PerformanceModel {
 public:
  ComposedOpampModel(const OpampStructure& s, const circuit::Process& proc, double loadCap);

  const std::vector<sizing::DesignVariable>& variables() const override { return vars_; }
  sizing::Performance evaluate(const std::vector<double>& x) const override;
  std::optional<core::cache::Digest128> cacheKey(
      const std::vector<double>& x) const override;
  /// Closed-form, same cost class as the hand-written models.
  sizing::EvalCost evalCost() const override { return sizing::EvalCost::Cheap; }

  const OpampStructure& structure() const { return s_; }

 private:
  OpampStructure s_;
  circuit::Process proc_;  ///< owned: generated libraries may be memoized
  double loadCap_;
  std::vector<sizing::DesignVariable> vars_;
  core::cache::Hasher128 keyPrefix_;  ///< tag+name+process+loadCap, mixed once
};

/// The generated amplifier library over the full composed space: one entry
/// per valid structure, in enumeration order, with model, bounds, rules and
/// complexity filled and every non-legacy builder registered in the
/// process-wide NetlistBuilderRegistry (once).  Memoized per
/// (process, loadCap): repeated flow starts reuse the sampled bounds.
TopologyLibrary generatedAmplifierLibrary(const circuit::Process& proc, double loadCap);

/// Map the opamp design plans (knowledge/opamp_plans.hpp) onto a composed
/// structure's variable vector: plan outputs fill the shared electrical
/// coordinates, cascode overdrives and the nulling ratio take deterministic
/// block defaults.  nullopt when the specs lack the gain_db + ugf pair the
/// plans require or plan backtracking fails.
std::optional<std::vector<double>> composedPlanSeed(const OpampStructure& s,
                                                    const sizing::SpecSet& specs,
                                                    const circuit::Process& proc,
                                                    double loadCap);

}  // namespace amsyn::topology
