// Simultaneous topology selection and sizing by mixed annealing (Maulik,
// Carley & Rutenbar, IEEE TCAD 1995 — the paper's ref [26]): the annealer's
// state carries a discrete topology choice (the paper's boolean variables)
// alongside per-topology continuous sizing vectors; topology-switch moves
// compete with sizing moves under one cost function.
#pragma once

#include <cstdint>

#include "sizing/cost.hpp"
#include "topology/library.hpp"

namespace amsyn::topology {

struct JointOptions {
  std::uint64_t seed = 1;
  std::size_t movesPerStage = 400;
  double coolingRate = 0.9;
  double topologySwitchProbability = 0.1;
  sizing::CostOptions cost;
};

struct JointResult {
  bool feasible = false;
  std::string topology;
  std::vector<double> x;
  sizing::Performance performance;
  double cost = 0.0;
  std::size_t topologySwitches = 0;  ///< accepted switch moves
  std::size_t evaluations = 0;
};

JointResult jointSelectAndSize(const TopologyLibrary& lib, const sizing::SpecSet& specs,
                               const JointOptions& opts = {});

}  // namespace amsyn::topology
