// Functional-block composition of op-amp structures (FUBOCO-style): instead
// of a hand-written menu, the candidate space is *generated* by composing a
// small library of parameterized structural blocks — differential pair
// (either polarity), simple or cascoded current-mirror load, tail bias with
// optional cascode, an optional common-source second stage with a
// current-sink load, and Miller compensation (plain or with a nulling
// resistor) — under electrical validity rules.  Each valid composition is
// one topology: it knows its canonical name, its design-variable vector
// (the union of its blocks' electrical variables, in a fixed stitch order),
// its structural complexity, and how to stitch its blocks' sub-netlists
// over canonical node names (vdd/0/nbias/tail/n1/no1/out).
//
// Determinism contract: enumerateOpampStructures() returns the same
// structures in the same order on every run and platform (plain nested
// loops over the block axes, no hashing, no address-dependent state), names
// are pure functions of the structure, and buildComposedOpamp is a pure
// function of (structure, x, proc, tb) — so canonical netlist digests,
// cache keys, and batch bit-identity guarantees survive the generated
// space.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/netlist.hpp"
#include "circuit/process.hpp"
#include "sizing/opamp.hpp"
#include "sizing/perfmodel.hpp"

namespace amsyn::topology {

/// Input differential-pair polarity.  The rest of the structure follows:
/// an NMOS pair takes a PMOS mirror load and NMOS tail; a PMOS pair the
/// complement.  The second stage's driver is the opposite polarity of the
/// pair (classic two-stage complementary arrangement).
enum class Polarity : std::uint8_t { Nmos, Pmos };

/// Compensation block choice.  None is only valid for single-stage
/// structures (the OTA's load capacitor is the dominant pole); a second
/// stage always requires Miller compensation for a two-pole loop, with the
/// nulling resistor as the RHP-zero variant.
enum class Compensation : std::uint8_t { None, Miller, MillerNulled };

/// One composed op-amp structure: which block variant fills each slot.
struct OpampStructure {
  Polarity input = Polarity::Nmos;
  bool inputCascode = false;  ///< telescopic cascode on the pair outputs
  bool loadCascode = false;   ///< cascoded current-mirror load
  bool tailCascode = false;   ///< cascoded tail current source
  bool secondStage = false;   ///< common-source output stage
  bool sinkCascode = false;   ///< cascoded second-stage current sink
  Compensation comp = Compensation::None;

  /// Exactly the hand-written five-transistor OTA.
  bool isLegacyOta() const;
  /// Exactly the hand-written two-stage Miller opamp.
  bool isLegacyTwoStage() const;

  /// Canonical name.  The two legacy structures keep their historical names
  /// ("five-transistor-ota", "two-stage-miller") so flow results, builder
  /// registrations, and cache identities stay compatible; every other
  /// composition gets a deterministic "gen/" token name.
  std::string name() const;

  /// Structural complexity: MOS device count plus compensation passives
  /// (excludes supplies, cascode bias rails, and the testbench).  Matches
  /// the hand-written entries' complexity figures (OTA 6, two-stage 9).
  int deviceCount() const;

  /// Electrical validity under the composition rules; on rejection `why`
  /// (when non-null) receives the violated rule.
  bool valid(std::string* why = nullptr) const;

  /// Design-variable vector in stitch order: i5, [i7], vov1, vov3, vov5,
  /// [vov6], [vovc1], [vovc3], [vovc5], [vovc7], [cc], [rzk].  The two
  /// legacy structures reproduce the hand-written models' variable lists
  /// exactly (names, bounds, log flags, order).
  std::vector<sizing::DesignVariable> variables() const;
};

/// Deterministically enumerate every electrically valid composition of the
/// block library (plain nested loops over the axes, filtered by valid()).
std::vector<OpampStructure> enumerateOpampStructures();

/// Device geometry of a composed structure, derived from the electrical
/// design point exactly the way the hand-written toParams() maps do.
/// Shared by the composed equation model and the composed netlist builder
/// so the model stays consistent with the netlist it predicts (the classic
/// OPASYN failure mode is letting the two drift).  Widths of absent blocks
/// stay zero.
struct ComposedGeometry {
  double l = 2e-6;
  double w1 = 0, w3 = 0, w5 = 0, w6 = 0, w7 = 0, w8 = 0;  ///< core devices
  double wc1 = 0, wc3 = 0, wc5 = 0, wc7 = 0;              ///< cascodes
  double cc = 0, rz = 0;                                  ///< compensation
  double ibias = 10e-6;
};

/// Map a design point (structure's variables() order) onto device sizes.
ComposedGeometry composedGeometryFor(const OpampStructure& s, const std::vector<double>& x,
                                     const circuit::Process& proc);

/// Stitch the structure's block sub-netlists into a sized open-loop
/// testbench netlist at design point `x` (the structure's variables()
/// order).  For the two legacy structures the result is device-for-device
/// identical to buildOta / buildTwoStageOpamp.
circuit::Netlist buildComposedOpamp(const OpampStructure& s, const std::vector<double>& x,
                                    const circuit::Process& proc,
                                    const sizing::OpampTestbench& tb);

}  // namespace amsyn::topology
