// Topology selection strategies surveyed in section 2.2 of the paper:
//  * rule-based selection (OPASYN [8], CADICS [9]) — heuristic scoring,
//  * boundary checking with interval analysis (Veselinovic et al. [15]) —
//    prove infeasibility from achievable-performance intervals before any
//    sizing is attempted,
//  * selection integrated with sizing (section "other tools have attempted
//    to integrate the topology selection step as part of the optimization
//    loop") — see genetic.hpp and joint.hpp for those.
#pragma once

#include <string>
#include <vector>

#include "sizing/synth.hpp"
#include "topology/library.hpp"

namespace amsyn::topology {

struct Candidate {
  std::string name;
  double score = 0.0;        ///< rule score (rule-based) or margin (interval)
  bool feasible = true;      ///< interval check verdict
  std::vector<std::string> reasons;
};

/// Rank all topologies by heuristic rule score (ties broken toward lower
/// structural complexity).  Never rejects — rules only order.
std::vector<Candidate> ruleBasedSelect(const TopologyLibrary& lib,
                                       const sizing::SpecSet& specs);

/// Boundary checking: a topology is infeasible iff some constraint bound
/// lies outside the achievable interval for that performance.  Feasible
/// candidates are ranked by their worst normalized margin.
std::vector<Candidate> intervalSelect(const TopologyLibrary& lib,
                                      const sizing::SpecSet& specs);

/// Full front-to-back selection + sizing (the AMGIE flow): interval-filter,
/// order by rules, then run optimization-based sizing on candidates in order
/// until one meets the specs.  `maxSizingCandidates` bounds how many ranked
/// candidates get a (costly) sizing run — with the generated space's dozens
/// of entries, sizing every interval-feasible candidate on a hopeless spec
/// set would multiply the flow's redesign cost by the space size.  0 means
/// unlimited; the default covers the legacy library several times over, so
/// legacy-space behavior is unchanged.
struct SelectAndSizeResult {
  bool success = false;
  std::string topology;
  sizing::SynthesisResult sizing;
  std::vector<Candidate> consideredOrder;
};
SelectAndSizeResult selectAndSize(const TopologyLibrary& lib, const sizing::SpecSet& specs,
                                  const sizing::SynthesisOptions& opts = {},
                                  std::size_t maxSizingCandidates = 8);

}  // namespace amsyn::topology
