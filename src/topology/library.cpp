#include "topology/library.hpp"

#include <cmath>
#include <stdexcept>

#include "core/context.hpp"
#include "sizing/eqmodel.hpp"
#include "topology/compose.hpp"

namespace amsyn::topology {

using num::Interval;
using sizing::SpecKind;
using sizing::SpecSet;

void TopologyLibrary::add(TopologyEntry entry) {
  if (!index_.emplace(entry.name, entries_.size()).second)
    throw std::invalid_argument("TopologyLibrary: duplicate topology name '" + entry.name +
                                "'");
  entries_.push_back(std::move(entry));
}

const TopologyEntry& TopologyLibrary::byName(const std::string& name) const {
  const auto it = index_.find(name);
  if (it == index_.end()) {
    std::string msg = "TopologyLibrary: no topology named '" + name + "'; available (" +
                      std::to_string(entries_.size()) + "):";
    for (const auto& [n, _] : index_) msg += " " + n;
    throw std::out_of_range(msg);
  }
  return entries_[it->second];
}

FeasibilityBounds boundsBySampling(const sizing::PerformanceModel& model,
                                   std::size_t gridPerAxis, double widen) {
  const auto& vars = model.variables();
  const std::size_t n = vars.size();
  FeasibilityBounds bounds;

  // Walk the full grid with a mixed-radix counter.
  std::vector<std::size_t> idx(n, 0);
  while (true) {
    std::vector<double> x(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double t = gridPerAxis == 1
                           ? 0.5
                           : static_cast<double>(idx[i]) / static_cast<double>(gridPerAxis - 1);
      const auto& v = vars[i];
      x[i] = (v.logScale && v.lo > 0) ? v.lo * std::pow(v.hi / v.lo, t)
                                      : v.lo + t * (v.hi - v.lo);
    }
    const auto perf = model.evaluate(x);
    for (const auto& [k, val] : perf) {
      if (k.rfind('_', 0) == 0) continue;  // skip meta performances
      auto [it, inserted] = bounds.emplace(k, Interval{val, val});
      if (!inserted)
        it->second = Interval{std::min(it->second.lo(), val), std::max(it->second.hi(), val)};
    }

    std::size_t d = 0;
    while (d < n && ++idx[d] == gridPerAxis) idx[d++] = 0;
    if (d == n) break;
  }

  // Widen conservatively: grid sampling underestimates the reachable hull.
  // A strictly positive hull (power, ugf, area, noise — quantities that are
  // positive by construction) widens in the log domain, so the lower bound
  // scales down but can never cross zero.  Everything else widens linearly
  // about the midpoint; when the sampled hull itself never went negative
  // (swing's max(0, .) floor, say), the widened lower bound is clamped at
  // zero — the model cannot produce what the bound would otherwise promise.
  for (auto& [k, b] : bounds) {
    if (b.lo() > 0.0) {
      const double mid = std::sqrt(b.lo() * b.hi());
      const double r = std::pow(std::sqrt(b.hi() / b.lo()), widen);
      b = Interval{mid / r, mid * r};
    } else {
      const double mid = b.mid(), half = b.width() / 2.0;
      double lo = mid - half * widen;
      if (b.lo() >= 0.0 && lo < 0.0) lo = 0.0;
      b = Interval{lo, mid + half * widen};
    }
  }
  return bounds;
}

std::vector<HeuristicRule> legacyOtaRules() {
  std::vector<HeuristicRule> rules;
  rules.push_back({"single stage suffices for moderate gain",
                   [](const SpecSet& specs) {
                     double score = 0.0;
                     for (const auto& s : specs.specs())
                       if (s.performance == "gain_db" && s.kind == SpecKind::GreaterEqual)
                         score += s.bound <= 45.0 ? 2.0 : -3.0;
                     return score;
                   }});
  rules.push_back({"no compensation: better for high speed",
                   [](const SpecSet& specs) {
                     double score = 0.0;
                     for (const auto& s : specs.specs())
                       if (s.performance == "ugf" && s.kind == SpecKind::GreaterEqual)
                         score += s.bound >= 2e7 ? 1.0 : 0.0;
                     return score;
                   }});
  rules.push_back({"one current branch: favored for low power",
                   [](const SpecSet& specs) {
                     double score = 0.0;
                     for (const auto& s : specs.specs())
                       if (s.performance == "power" &&
                           (s.kind == SpecKind::Minimize || s.kind == SpecKind::LessEqual))
                         score += 1.0;
                     return score;
                   }});
  return rules;
}

std::vector<HeuristicRule> legacyTwoStageRules() {
  std::vector<HeuristicRule> rules;
  rules.push_back({"two gain stages needed above ~45 dB",
                   [](const SpecSet& specs) {
                     double score = 0.0;
                     for (const auto& s : specs.specs())
                       if (s.performance == "gain_db" && s.kind == SpecKind::GreaterEqual)
                         score += s.bound > 45.0 ? 3.0 : -1.0;
                     return score;
                   }});
  rules.push_back({"output stage gives rail-to-rail-ish swing",
                   [](const SpecSet& specs) {
                     double score = 0.0;
                     for (const auto& s : specs.specs())
                       if (s.performance == "swing" && s.kind == SpecKind::GreaterEqual)
                         score += s.bound >= 3.0 ? 1.5 : 0.0;
                     return score;
                   }});
  rules.push_back({"second branch costs power",
                   [](const SpecSet& specs) {
                     double score = 0.0;
                     for (const auto& s : specs.specs())
                       if (s.performance == "power" && s.kind == SpecKind::Minimize)
                         score += -0.5;
                     return score;
                   }});
  return rules;
}

TopologySpace defaultTopologySpace() {
  // The AMSYN_TOPOLOGY_SPACE knob now arrives through the execution
  // context's config (parsed once in core::envknobs); the ambient context
  // reproduces the old process-global behavior exactly.
  switch (core::ExecutionContext::current().config().topologySpace) {
    case core::TopologySpaceKind::Generated:
      return TopologySpace::Generated;
    case core::TopologySpaceKind::Legacy:
      break;
  }
  return TopologySpace::Legacy;
}

TopologyLibrary amplifierLibrary(const circuit::Process& proc, double loadCap,
                                 TopologySpace space) {
  if (space == TopologySpace::Default) space = defaultTopologySpace();
  if (space == TopologySpace::Generated) return generatedAmplifierLibrary(proc, loadCap);

  TopologyLibrary lib;

  {
    TopologyEntry ota;
    ota.name = "five-transistor-ota";
    ota.model = std::make_shared<sizing::OtaEquationModel>(proc, loadCap);
    ota.bounds = boundsBySampling(*ota.model, 5);
    ota.complexity = 6;
    ota.rules = legacyOtaRules();
    lib.add(std::move(ota));
  }

  {
    TopologyEntry ts;
    ts.name = "two-stage-miller";
    ts.model = std::make_shared<sizing::TwoStageEquationModel>(proc, loadCap);
    ts.bounds = boundsBySampling(*ts.model, 4);
    ts.complexity = 9;
    ts.rules = legacyTwoStageRules();
    lib.add(std::move(ts));
  }

  return lib;
}

}  // namespace amsyn::topology
