#include "topology/library.hpp"

#include <cmath>
#include <stdexcept>

#include "sizing/eqmodel.hpp"

namespace amsyn::topology {

using num::Interval;
using sizing::SpecKind;
using sizing::SpecSet;

void TopologyLibrary::add(TopologyEntry entry) { entries_.push_back(std::move(entry)); }

const TopologyEntry& TopologyLibrary::byName(const std::string& name) const {
  for (const auto& e : entries_)
    if (e.name == name) return e;
  throw std::out_of_range("TopologyLibrary: no topology named " + name);
}

FeasibilityBounds boundsBySampling(const sizing::PerformanceModel& model,
                                   std::size_t gridPerAxis, double widen) {
  const auto& vars = model.variables();
  const std::size_t n = vars.size();
  FeasibilityBounds bounds;
  bool first = true;

  // Walk the full grid with a mixed-radix counter.
  std::vector<std::size_t> idx(n, 0);
  while (true) {
    std::vector<double> x(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double t = gridPerAxis == 1
                           ? 0.5
                           : static_cast<double>(idx[i]) / static_cast<double>(gridPerAxis - 1);
      const auto& v = vars[i];
      x[i] = (v.logScale && v.lo > 0) ? v.lo * std::pow(v.hi / v.lo, t)
                                      : v.lo + t * (v.hi - v.lo);
    }
    const auto perf = model.evaluate(x);
    for (const auto& [k, val] : perf) {
      if (k.rfind('_', 0) == 0) continue;  // skip meta performances
      if (first || !bounds.count(k)) {
        if (!bounds.count(k)) bounds.emplace(k, Interval{val, val});
      }
      auto& b = bounds.at(k);
      b = Interval{std::min(b.lo(), val), std::max(b.hi(), val)};
    }
    first = false;

    std::size_t d = 0;
    while (d < n && ++idx[d] == gridPerAxis) idx[d++] = 0;
    if (d == n) break;
  }

  // Widen conservatively: grid sampling underestimates the reachable hull.
  for (auto& [k, b] : bounds) {
    const double mid = b.mid(), half = b.width() / 2.0;
    b = Interval{mid - half * widen, mid + half * widen};
  }
  return bounds;
}

TopologyLibrary amplifierLibrary(const circuit::Process& proc, double loadCap) {
  TopologyLibrary lib;

  {
    TopologyEntry ota;
    ota.name = "five-transistor-ota";
    ota.model = std::make_shared<sizing::OtaEquationModel>(proc, loadCap);
    ota.bounds = boundsBySampling(*ota.model, 5);
    ota.complexity = 6;
    ota.rules.push_back({"single stage suffices for moderate gain",
                         [](const SpecSet& specs) {
                           for (const auto& s : specs.specs())
                             if (s.performance == "gain_db" &&
                                 s.kind == SpecKind::GreaterEqual)
                               return s.bound <= 45.0 ? 2.0 : -3.0;
                           return 0.0;
                         }});
    ota.rules.push_back({"no compensation: better for high speed",
                         [](const SpecSet& specs) {
                           for (const auto& s : specs.specs())
                             if (s.performance == "ugf" && s.kind == SpecKind::GreaterEqual)
                               return s.bound >= 2e7 ? 1.0 : 0.0;
                           return 0.0;
                         }});
    ota.rules.push_back({"one current branch: favored for low power",
                         [](const SpecSet& specs) {
                           for (const auto& s : specs.specs())
                             if (s.performance == "power" &&
                                 (s.kind == SpecKind::Minimize ||
                                  s.kind == SpecKind::LessEqual))
                               return 1.0;
                           return 0.0;
                         }});
    lib.add(std::move(ota));
  }

  {
    TopologyEntry ts;
    ts.name = "two-stage-miller";
    ts.model = std::make_shared<sizing::TwoStageEquationModel>(proc, loadCap);
    ts.bounds = boundsBySampling(*ts.model, 4);
    ts.complexity = 9;
    ts.rules.push_back({"two gain stages needed above ~45 dB",
                        [](const SpecSet& specs) {
                          for (const auto& s : specs.specs())
                            if (s.performance == "gain_db" &&
                                s.kind == SpecKind::GreaterEqual)
                              return s.bound > 45.0 ? 3.0 : -1.0;
                          return 0.0;
                        }});
    ts.rules.push_back({"output stage gives rail-to-rail-ish swing",
                        [](const SpecSet& specs) {
                          for (const auto& s : specs.specs())
                            if (s.performance == "swing" && s.kind == SpecKind::GreaterEqual)
                              return s.bound >= 3.0 ? 1.5 : 0.0;
                          return 0.0;
                        }});
    ts.rules.push_back({"second branch costs power",
                        [](const SpecSet& specs) {
                          for (const auto& s : specs.specs())
                            if (s.performance == "power" && s.kind == SpecKind::Minimize)
                              return -0.5;
                          return 0.0;
                        }});
    lib.add(std::move(ts));
  }

  return lib;
}

}  // namespace amsyn::topology
