// DARWIN-style genetic topology + sizing search (Kruiskamp & Leenaerts,
// DAC 1995 — the paper's ref [28]): each individual carries a topology gene
// plus a normalized sizing chromosome; selection, crossover and mutation act
// on both, so the population migrates toward the topology whose sized
// instances fit the specs best.
#pragma once

#include <cstdint>

#include "sizing/cost.hpp"
#include "topology/library.hpp"

namespace amsyn::topology {

struct GeneticOptions {
  std::size_t populationSize = 40;
  std::size_t generations = 60;
  double crossoverRate = 0.8;
  double mutationRate = 0.15;
  double mutationSigma = 0.15;     ///< gene perturbation (unit-cube units)
  double topologyMutationRate = 0.05;
  std::size_t tournamentSize = 3;
  std::uint64_t seed = 1;
  sizing::CostOptions cost;
};

struct GeneticResult {
  bool feasible = false;
  std::string topology;
  std::vector<double> x;           ///< design point in the winner's model space
  sizing::Performance performance;
  double cost = 0.0;
  std::size_t evaluations = 0;
  /// Final share of the population on each topology (selection pressure
  /// visualization).
  std::map<std::string, double> populationShare;
};

GeneticResult geneticSelectAndSize(const TopologyLibrary& lib, const sizing::SpecSet& specs,
                                   const GeneticOptions& opts = {});

}  // namespace amsyn::topology
