// Topology library: the menu of circuit schematics a selection strategy
// chooses from (section 2.1: "selecting the most appropriate circuit
// topology out of a set of alternatives, that can best meet the given
// specifications").  Each entry bundles an equation-based performance model
// (for optimization and interval analysis), heuristic applicability rules,
// and coarse feasibility intervals.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "circuit/process.hpp"
#include "numeric/interval.hpp"
#include "sizing/perfmodel.hpp"
#include "sizing/spec.hpp"

namespace amsyn::topology {

/// Achievable performance ranges: performance name -> interval over the
/// whole design space (computed by interval evaluation, ref [15]).
using FeasibilityBounds = std::map<std::string, num::Interval>;

/// A heuristic applicability rule (OPASYN-style rule-based selection):
/// returns a score contribution (positive favors the topology) with an
/// explanation.
struct HeuristicRule {
  std::string description;
  std::function<double(const sizing::SpecSet&)> score;
};

struct TopologyEntry {
  std::string name;
  std::shared_ptr<sizing::PerformanceModel> model;
  FeasibilityBounds bounds;
  std::vector<HeuristicRule> rules;
  /// Relative structural complexity (devices); tie-breaker — simpler wins.
  int complexity = 0;
};

class TopologyLibrary {
 public:
  /// Append an entry.  Names are the library's keys (selection results,
  /// builder-registry lookups, cache identities all ride on them), so a
  /// duplicate name is a construction bug: throws std::invalid_argument.
  void add(TopologyEntry entry);
  const std::vector<TopologyEntry>& entries() const { return entries_; }
  /// Entry by name, O(log n).  Throws std::out_of_range listing the
  /// available names when absent — with a generated space of dozens of
  /// entries, "no topology named X" alone buries the actual menu.
  const TopologyEntry& byName(const std::string& name) const;
  std::size_t size() const { return entries_.size(); }

 private:
  std::vector<TopologyEntry> entries_;
  std::map<std::string, std::size_t> index_;  ///< name -> entries_ position
};

/// Which candidate space amplifierLibrary returns.
enum class TopologySpace : std::uint8_t {
  Default,    ///< defaultTopologySpace(): the AMSYN_TOPOLOGY_SPACE env choice
  Legacy,     ///< the two hand-written cells only
  Generated,  ///< the composed functional-block space (topology/compose.hpp)
};

/// Process-wide default space: AMSYN_TOPOLOGY_SPACE=generated selects the
/// composed space, anything else (or unset) the legacy pair.
TopologySpace defaultTopologySpace();

/// The amplifier candidate library.  Legacy: five-transistor OTA and
/// two-stage Miller opamp with interval bounds derived from their equation
/// models over the full design-variable box.  Generated: the functional-
/// block composition space (dozens of electrically valid op-amp structures,
/// including both legacy cells reproduced bit-identically as composition
/// instances — see topology/compose.hpp).
TopologyLibrary amplifierLibrary(const circuit::Process& proc, double loadCap,
                                 TopologySpace space = TopologySpace::Default);

/// Heuristic rule sets of the hand-written cells, shared with the generated
/// space (which reproduces those cells as composition instances and must
/// score them identically).  Every rule aggregates over *all* matching
/// specs — a SpecSet may carry several bounds on one performance.
std::vector<HeuristicRule> legacyOtaRules();
std::vector<HeuristicRule> legacyTwoStageRules();

/// Interval evaluation of an equation model: bound each performance over the
/// design box by sampling a coarse grid and taking the hull, widened by a
/// safety factor.  (A conservative, implementation-agnostic stand-in for
/// per-model interval arithmetic; soundness direction: intervals always
/// contain every sampled achievable point.)
FeasibilityBounds boundsBySampling(const sizing::PerformanceModel& model,
                                   std::size_t gridPerAxis = 3, double widen = 1.15);

}  // namespace amsyn::topology
