#include "topology/blocks.hpp"

#include <cmath>
#include <stdexcept>

namespace amsyn::topology {

using circuit::MosType;
using circuit::Netlist;
using circuit::Process;
using sizing::DesignVariable;

bool OpampStructure::isLegacyOta() const {
  return input == Polarity::Nmos && !inputCascode && !loadCascode && !tailCascode &&
         !secondStage && !sinkCascode && comp == Compensation::None;
}

bool OpampStructure::isLegacyTwoStage() const {
  return input == Polarity::Nmos && !inputCascode && !loadCascode && !tailCascode &&
         secondStage && !sinkCascode && comp == Compensation::Miller;
}

std::string OpampStructure::name() const {
  if (isLegacyOta()) return "five-transistor-ota";
  if (isLegacyTwoStage()) return "two-stage-miller";
  // Token name: one token per occupied block slot, in stitch order.  Pure
  // function of the structure — the determinism contract rides on this.
  std::string n = "gen/";
  n += input == Polarity::Nmos ? "dpn" : "dpp";
  if (inputCascode) n += ".icas";
  n += loadCascode ? ".mirc" : ".mirs";
  n += tailCascode ? ".tailc" : ".tails";
  if (secondStage) {
    n += ".cs";
    if (sinkCascode) n += ".scas";
    n += comp == Compensation::MillerNulled ? ".milrz" : ".mil";
  }
  return n;
}

int OpampStructure::deviceCount() const {
  int c = 2;                   // differential pair
  if (inputCascode) c += 2;    // pair cascodes
  c += 2;                      // mirror load
  if (loadCascode) c += 2;     // mirror cascodes
  c += 1;                      // tail source
  if (tailCascode) c += 1;     // tail cascode
  c += 1;                      // bias diode
  if (secondStage) {
    c += 2;                    // driver + sink
    if (sinkCascode) c += 1;   // sink cascode
    c += 1;                    // Miller capacitor
    if (comp == Compensation::MillerNulled) c += 1;  // nulling resistor
  }
  return c;
}

bool OpampStructure::valid(std::string* why) const {
  auto reject = [&](const char* reason) {
    if (why) *why = reason;
    return false;
  };
  // A second stage turns the amplifier into a two-pole loop: Miller
  // compensation (plain or nulled) is mandatory.  Conversely the
  // compensation block bridges the stage-1/stage-2 nodes — without a second
  // stage there is nothing to bridge (the OTA's load cap is the pole).
  if (secondStage && comp == Compensation::None)
    return reject("two-stage structure requires Miller compensation");
  if (!secondStage && comp != Compensation::None)
    return reject("compensation block requires a second stage");
  if (sinkCascode && !secondStage)
    return reject("sink cascode requires a second stage");
  // Stacking cascodes on the pair, the load, *and* the tail leaves no
  // headroom for the input common mode at the supply these blocks are
  // characterized for — a fully telescopic-regulated stack is outside the
  // library's validity region.
  if (inputCascode && loadCascode && tailCascode)
    return reject("input+load+tail cascodes exceed the headroom budget");
  return true;
}

std::vector<DesignVariable> OpampStructure::variables() const {
  std::vector<DesignVariable> vars;
  vars.push_back({"i5", 2e-6, 2e-3, true});              // first-stage tail current
  if (secondStage) vars.push_back({"i7", 2e-6, 5e-3, true});  // second-stage current
  vars.push_back({"vov1", 0.08, 0.5, false});            // input-pair overdrive
  vars.push_back({"vov3", 0.10, 0.8, false});            // mirror overdrive
  vars.push_back({"vov5", 0.10, 0.8, false});            // tail / sink overdrive
  if (secondStage) vars.push_back({"vov6", 0.10, 0.8, false});  // output-driver overdrive
  if (inputCascode) vars.push_back({"vovc1", 0.08, 0.4, false});
  if (loadCascode) vars.push_back({"vovc3", 0.10, 0.5, false});
  if (tailCascode) vars.push_back({"vovc5", 0.10, 0.5, false});
  if (sinkCascode) vars.push_back({"vovc7", 0.10, 0.5, false});
  if (secondStage) vars.push_back({"cc", 0.2e-12, 2e-11, true});  // Miller capacitor
  if (comp == Compensation::MillerNulled)
    vars.push_back({"rzk", 1.05, 3.0, false});  // Rz = rzk / gm6 (zero-nulling ratio)
  return vars;
}

std::vector<OpampStructure> enumerateOpampStructures() {
  std::vector<OpampStructure> out;
  // Plain nested loops over the block axes, filtered by the validity rules:
  // the enumeration order — and therefore the generated library's candidate
  // order — is a compile-time constant.
  for (const Polarity input : {Polarity::Nmos, Polarity::Pmos})
    for (const bool secondStage : {false, true})
      for (const bool inputCascode : {false, true})
        for (const bool loadCascode : {false, true})
          for (const bool tailCascode : {false, true})
            for (const bool sinkCascode : {false, true})
              for (const Compensation comp :
                   {Compensation::None, Compensation::Miller, Compensation::MillerNulled}) {
                OpampStructure s;
                s.input = input;
                s.inputCascode = inputCascode;
                s.loadCascode = loadCascode;
                s.tailCascode = tailCascode;
                s.secondStage = secondStage;
                s.sinkCascode = sinkCascode;
                s.comp = comp;
                if (s.valid()) out.push_back(s);
              }
  return out;
}

namespace {

/// W from the square law: W = 2 I L / (kp Vov^2), floored at the process
/// minimum width — the same map the hand-written models use.
double widthFor(double i, double vov, double kp, double l, double minW) {
  return std::max(minW, 2.0 * i * l / (kp * vov * vov));
}

}  // namespace

ComposedGeometry composedGeometryFor(const OpampStructure& s, const std::vector<double>& x,
                                     const Process& proc) {
  // Unpack in stitch order (see OpampStructure::variables()).
  std::size_t k = 0;
  const double i5 = x[k++];
  const double i7 = s.secondStage ? x[k++] : 0.0;
  const double vov1 = x[k++];
  const double vov3 = x[k++];
  const double vov5 = x[k++];
  const double vov6 = s.secondStage ? x[k++] : 0.0;
  (void)vov6;  // pinned by the zero-offset constraint, like the legacy model
  const double vovc1 = s.inputCascode ? x[k++] : 0.0;
  const double vovc3 = s.loadCascode ? x[k++] : 0.0;
  const double vovc5 = s.tailCascode ? x[k++] : 0.0;
  const double vovc7 = s.sinkCascode ? x[k++] : 0.0;
  const double cc = s.secondStage ? x[k++] : 0.0;
  const double rzk = s.comp == Compensation::MillerNulled ? x[k++] : 0.0;

  const double kpIn = s.input == Polarity::Nmos ? proc.kpN : proc.kpP;
  const double kpLoad = s.input == Polarity::Nmos ? proc.kpP : proc.kpN;

  ComposedGeometry g;
  const double l = g.l;
  g.w1 = widthFor(i5 / 2.0, vov1, kpIn, l, proc.minW);
  g.w3 = widthFor(i5 / 2.0, vov3, kpLoad, l, proc.minW);
  g.w5 = widthFor(i5, vov5, kpIn, l, proc.minW);
  if (s.inputCascode) g.wc1 = widthFor(i5 / 2.0, vovc1, kpIn, l, proc.minW);
  if (s.loadCascode) g.wc3 = widthFor(i5 / 2.0, vovc3, kpLoad, l, proc.minW);
  if (s.tailCascode) g.wc5 = widthFor(i5, vovc5, kpIn, l, proc.minW);
  if (s.secondStage) {
    // Zero-systematic-offset constraint: the mirror pins the driver's gate
    // voltage, so W6 follows from the current ratio (see the hand-written
    // TwoStageEquationModel::toParams for the full rationale).
    g.w6 = std::max(proc.minW, g.w3 * 2.0 * i7 / i5);
    g.w7 = widthFor(i7, vov5, kpIn, l, proc.minW);
    if (s.sinkCascode) g.wc7 = widthFor(i7, vovc7, kpIn, l, proc.minW);
    g.cc = cc;
    if (s.comp == Compensation::MillerNulled) {
      // Rz around 1/gm6 nulls the RHP zero; rzk > 1 pushes it to the LHP.
      const double vov6eff = std::sqrt(2.0 * i7 * l / (kpLoad * g.w6));
      const double gm6 = 2.0 * i7 / vov6eff;
      g.rz = rzk / gm6;
    }
  }
  g.ibias = 10e-6;
  // Bias diode sized for the same overdrive as the tail at the reference
  // current, so the mirror ratio sets I5.
  g.w8 = std::max(proc.minW, g.w5 * g.ibias / std::max(i5, 1e-9));
  return g;
}

Netlist buildComposedOpamp(const OpampStructure& s, const std::vector<double>& x,
                           const Process& proc, const sizing::OpampTestbench& tb) {
  std::string why;
  if (!s.valid(&why)) throw std::invalid_argument("buildComposedOpamp: " + why);
  if (x.size() != s.variables().size())
    throw std::invalid_argument("buildComposedOpamp: wrong dimension for " + s.name());

  const ComposedGeometry g = composedGeometryFor(s, x, proc);
  const bool nIn = s.input == Polarity::Nmos;
  const MosType tIn = nIn ? MosType::Nmos : MosType::Pmos;
  const MosType tLoad = nIn ? MosType::Pmos : MosType::Nmos;
  // Rails the device polarity classes hang from: the pair/tail side sits on
  // srcIn, the mirror side on srcLoad.  For the canonical NMOS-input
  // structure srcIn = "0", srcLoad = "vdd"; a PMOS pair mirrors everything.
  const std::string srcIn = nIn ? "0" : "vdd";
  const std::string srcLoad = nIn ? "vdd" : "0";
  const double l = g.l;

  Netlist net;
  // Supplies + bias reference.  The diode is always on the pair/tail side
  // (it mirrors the tail current), so a PMOS pair takes the flipped
  // reference pulling the bias current out of a PMOS diode.
  sizing::addOpampSupplies(net, proc, g.ibias, /*pmosDiode=*/!nIn);

  // Stage-1 output node: the two-stage structure inserts the internal node
  // "no1" the compensation bridges; single-stage drives "out" directly.
  const std::string s1out = s.secondStage ? "no1" : "out";

  // Differential pair (+ optional cascodes splitting the drain nodes).
  const std::string dl = s.inputCascode ? "n1a" : "n1";
  const std::string dr = s.inputCascode ? "n1b" : s1out;
  net.addMos("M1", dl, "inp", "tail", srcIn, tIn, g.w1, l);
  net.addMos("M2", dr, "inn", "tail", srcIn, tIn, g.w1, l);
  if (s.inputCascode) {
    const std::string rail = nIn ? "ncasn" : "ncasp";
    net.addMos("M1C", "n1", rail, "n1a", srcIn, tIn, g.wc1, l);
    net.addMos("M2C", s1out, rail, "n1b", srcIn, tIn, g.wc1, l);
  }

  // Current-mirror load (simple, or cascoded with the diode leg matching).
  if (!s.loadCascode) {
    net.addMos("M3", "n1", "n1", srcLoad, srcLoad, tLoad, g.w3, l);
    net.addMos("M4", s1out, "n1", srcLoad, srcLoad, tLoad, g.w3, l);
  } else {
    const std::string rail = nIn ? "ncasp" : "ncasn";
    net.addMos("M3", "n3a", "n1", srcLoad, srcLoad, tLoad, g.w3, l);
    net.addMos("M4", "n3b", "n1", srcLoad, srcLoad, tLoad, g.w3, l);
    net.addMos("M3C", "n1", rail, "n3a", srcLoad, tLoad, g.wc3, l);
    net.addMos("M4C", s1out, rail, "n3b", srcLoad, tLoad, g.wc3, l);
  }

  // Tail current source (optionally cascoded toward the pair).
  if (!s.tailCascode) {
    net.addMos("M5", "tail", "nbias", srcIn, srcIn, tIn, g.w5, l);
  } else {
    const std::string rail = nIn ? "ncasn" : "ncasp";
    net.addMos("M5C", "tail", rail, "n5c", srcIn, tIn, g.wc5, l);
    net.addMos("M5", "n5c", "nbias", srcIn, srcIn, tIn, g.w5, l);
  }

  // Second stage: common-source driver of the complementary polarity with a
  // bias-mirrored current-sink load (optionally cascoded).
  if (s.secondStage) {
    net.addMos("M6", "out", "no1", srcLoad, srcLoad, tLoad, g.w6, l);
    if (!s.sinkCascode) {
      net.addMos("M7", "out", "nbias", srcIn, srcIn, tIn, g.w7, l);
    } else {
      const std::string rail = nIn ? "ncasn" : "ncasp";
      net.addMos("M7C", "out", rail, "n7c", srcIn, tIn, g.wc7, l);
      net.addMos("M7", "n7c", "nbias", srcIn, srcIn, tIn, g.w7, l);
    }
  }

  // Bias diode.
  net.addMos("M8", "nbias", "nbias", srcIn, srcIn, tIn, g.w8, l);

  // Compensation across the second stage.
  if (s.comp == Compensation::Miller) {
    net.addCapacitor("CC", "no1", "out", g.cc);
  } else if (s.comp == Compensation::MillerNulled) {
    net.addCapacitor("CC", "no1", "nz", g.cc);
    net.addResistor("RZ", "nz", "out", g.rz);
  }

  // Cascode gate-bias rails (ideal references; deterministic functions of
  // the supply).  Added after the core so the legacy structures — which use
  // no rails — keep their historical device order byte-for-byte.
  const bool usesNRail = nIn ? (s.inputCascode || s.tailCascode || s.sinkCascode)
                             : s.loadCascode;
  const bool usesPRail = nIn ? s.loadCascode
                             : (s.inputCascode || s.tailCascode || s.sinkCascode);
  if (usesNRail) net.addVSource("VCASN", "ncasn", "0", proc.vdd * 0.35);
  if (usesPRail) net.addVSource("VCASP", "ncasp", "0", proc.vdd * 0.65);

  sizing::addOpampTestbench(net, tb);
  return net;
}

}  // namespace amsyn::topology
