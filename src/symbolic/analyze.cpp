#include "symbolic/analyze.hpp"

#include <bit>
#include <cmath>
#include <complex>
#include <sstream>
#include <stdexcept>

#include "numeric/polynomial.hpp"

namespace amsyn::symbolic {

void SmallSignalCircuit::addConductance(const std::string& name, double g0, std::size_t a,
                                        std::size_t b) {
  if (a >= nodeCount_ || b >= nodeCount_) throw std::out_of_range("addConductance: bad node");
  elems_.push_back({Element::Kind::G, syms_.intern(name, g0), a, b, 0, 0});
}

void SmallSignalCircuit::addCapacitance(const std::string& name, double c0, std::size_t a,
                                        std::size_t b) {
  if (a >= nodeCount_ || b >= nodeCount_) throw std::out_of_range("addCapacitance: bad node");
  elems_.push_back({Element::Kind::C, syms_.intern(name, c0), a, b, 0, 0});
}

void SmallSignalCircuit::addTransconductance(const std::string& name, double gm0,
                                             std::size_t from, std::size_t to, std::size_t cp,
                                             std::size_t cm) {
  if (from >= nodeCount_ || to >= nodeCount_ || cp >= nodeCount_ || cm >= nodeCount_)
    throw std::out_of_range("addTransconductance: bad node");
  elems_.push_back({Element::Kind::Gm, syms_.intern(name, gm0), from, to, cp, cm});
}

std::vector<std::vector<SPoly>> SmallSignalCircuit::admittanceMatrix() const {
  const std::size_t n = nodeCount_ - 1;  // ground eliminated
  std::vector<std::vector<SPoly>> y(n, std::vector<SPoly>(n));

  auto idx = [](std::size_t node) { return node - 1; };
  auto stampPair = [&](std::size_t a, std::size_t b, const SPoly& val) {
    if (a != 0) y[idx(a)][idx(a)] = y[idx(a)][idx(a)] + val;
    if (b != 0) y[idx(b)][idx(b)] = y[idx(b)][idx(b)] + val;
    if (a != 0 && b != 0) {
      y[idx(a)][idx(b)] = y[idx(a)][idx(b)] - val;
      y[idx(b)][idx(a)] = y[idx(b)][idx(a)] - val;
    }
  };
  // Transconductance stamp: current gm*(v_cp - v_cm) leaves `from`, enters
  // `to`; KCL rows gain +gm at (from, cp), -gm at (from, cm), -gm at (to,
  // cp), +gm at (to, cm).
  auto stampGm = [&](const Element& e, const SPoly& val) {
    const std::size_t rows[2] = {e.a, e.b};
    const double rowSign[2] = {+1.0, -1.0};
    const std::size_t cols[2] = {e.cp, e.cm};
    const double colSign[2] = {+1.0, -1.0};
    for (int r = 0; r < 2; ++r) {
      if (rows[r] == 0) continue;
      for (int c = 0; c < 2; ++c) {
        if (cols[c] == 0) continue;
        SPoly signedVal = val;
        if (rowSign[r] * colSign[c] < 0) signedVal = signedVal.negated();
        y[idx(rows[r])][idx(cols[c])] = y[idx(rows[r])][idx(cols[c])] + signedVal;
      }
    }
  };

  for (const Element& e : elems_) {
    switch (e.kind) {
      case Element::Kind::G:
        stampPair(e.a, e.b, SPoly{SymSum::symbol(e.sym)});
        break;
      case Element::Kind::C:
        stampPair(e.a, e.b, SPoly::sTimes(SymSum::symbol(e.sym)));
        break;
      case Element::Kind::Gm:
        stampGm(e, SPoly{SymSum::symbol(e.sym)});
        break;
    }
  }
  return y;
}

SPoly symbolicDeterminant(const std::vector<std::vector<SPoly>>& m) {
  const std::size_t n = m.size();
  if (n == 0) return SPoly{SymSum::constant(1.0)};
  if (n > 20) throw std::invalid_argument("symbolicDeterminant: matrix too large");
  for (const auto& row : m)
    if (row.size() != n) throw std::invalid_argument("symbolicDeterminant: not square");

  // dp[mask]: signed sum over assignments of rows 0..popcount(mask)-1 to the
  // column set `mask`.
  std::vector<SPoly> dp(std::size_t{1} << n);
  dp[0] = SPoly{SymSum::constant(1.0)};
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    if (dp[mask].isZero() && mask != 0) continue;
    const std::size_t row = static_cast<std::size_t>(std::popcount(mask));
    if (row >= n) continue;
    for (std::size_t j = 0; j < n; ++j) {
      if (mask & (1u << j)) continue;
      if (m[row][j].isZero()) continue;
      // Parity of inversions added by pairing this row with column j equals
      // the number of already-used columns greater than j.
      const std::uint32_t higher = mask >> (j + 1);
      const bool negative = std::popcount(higher) % 2 == 1;
      SPoly contrib = m[row][j] * dp[mask];
      if (negative) contrib = contrib.negated();
      dp[mask | (1u << j)] = dp[mask | (1u << j)] + contrib;
    }
  }
  return dp[(std::size_t{1} << n) - 1];
}

namespace {

/// Determinant of `m` with column `col` replaced by `rhs` (Cramer's rule).
SPoly cramerDeterminant(std::vector<std::vector<SPoly>> m, std::size_t col,
                        const std::vector<SPoly>& rhs) {
  for (std::size_t r = 0; r < m.size(); ++r) m[r][col] = rhs[r];
  return symbolicDeterminant(m);
}

}  // namespace

double SymbolicTransfer::magnitudeAt(const SymbolTable& t, double frequencyHz) const {
  const std::complex<double> s{0.0, 2.0 * M_PI * frequencyHz};
  auto evalPoly = [&](const std::vector<double>& c) {
    std::complex<double> acc = 0.0;
    for (std::size_t k = c.size(); k-- > 0;) acc = acc * s + c[k];
    return acc;
  };
  const auto nc = num.evaluate(t);
  const auto dc = den.evaluate(t);
  return std::abs(evalPoly(nc) / evalPoly(dc));
}

std::vector<std::complex<double>> SymbolicTransfer::poles(const SymbolTable& t) const {
  return num::Polynomial(den.evaluate(t)).roots();
}

std::vector<std::complex<double>> SymbolicTransfer::zeros(const SymbolTable& t) const {
  return num::Polynomial(num.evaluate(t)).roots();
}

std::string SymbolicTransfer::toString(const SymbolTable& t) const {
  std::ostringstream out;
  out << "[" << num.toString(t) << "] / [" << den.toString(t) << "]";
  return out.str();
}

SymbolicTransfer transimpedance(const SmallSignalCircuit& c, std::size_t in,
                                std::size_t out) {
  if (in == 0 || out == 0) throw std::invalid_argument("transimpedance: ground terminal");
  auto y = c.admittanceMatrix();
  const std::size_t n = y.size();
  std::vector<SPoly> rhs(n);
  rhs[in - 1] = SPoly{SymSum::constant(1.0)};
  SymbolicTransfer h;
  h.den = symbolicDeterminant(y);
  h.num = cramerDeterminant(std::move(y), out - 1, rhs);
  return h;
}

SymbolicTransfer voltageTransfer(const SmallSignalCircuit& c, std::size_t in,
                                 std::size_t out) {
  if (in == 0 || out == 0 || in == out)
    throw std::invalid_argument("voltageTransfer: bad terminals");
  auto y = c.admittanceMatrix();
  const std::size_t n = y.size();
  const std::size_t inIdx = in - 1;

  // Reduce: drop the KCL row of the driven node and move its column to the
  // RHS (v_in = 1 symbolically).
  std::vector<std::vector<SPoly>> yr;
  std::vector<SPoly> rhs;
  std::vector<std::size_t> keep;  // original index of each reduced row/col
  for (std::size_t r = 0; r < n; ++r) {
    if (r == inIdx) continue;
    keep.push_back(r);
    std::vector<SPoly> row;
    for (std::size_t cc = 0; cc < n; ++cc) {
      if (cc == inIdx) continue;
      row.push_back(y[r][cc]);
    }
    yr.push_back(std::move(row));
    rhs.push_back(y[r][inIdx].negated());
  }

  std::size_t outIdx = static_cast<std::size_t>(-1);
  for (std::size_t i = 0; i < keep.size(); ++i)
    if (keep[i] == out - 1) outIdx = i;
  if (outIdx == static_cast<std::size_t>(-1))
    throw std::invalid_argument("voltageTransfer: output node is the input");

  SymbolicTransfer h;
  h.den = symbolicDeterminant(yr);
  h.num = cramerDeterminant(std::move(yr), outIdx, rhs);
  return h;
}

}  // namespace amsyn::symbolic
