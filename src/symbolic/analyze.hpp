// ISAAC-style symbolic AC analysis of small-signal circuits.
//
// The circuit is described by symbolic admittance elements (conductances,
// capacitances, transconductances); analysis builds the node-admittance
// matrix over SPoly entries and extracts a transfer function by Cramer's
// rule, using a subset-DP determinant (O(n 2^n) SymSum multiplies) that is
// exact for the <= ~14-node circuits cell-level analog design deals with.
#pragma once

#include <complex>
#include <string>
#include <vector>

#include "symbolic/sympoly.hpp"

namespace amsyn::symbolic {

/// A small-signal circuit over numbered nodes; node 0 is ground.
class SmallSignalCircuit {
 public:
  explicit SmallSignalCircuit(std::size_t nodeCount) : nodeCount_(nodeCount) {}

  std::size_t nodeCount() const { return nodeCount_; }
  SymbolTable& symbols() { return syms_; }
  const SymbolTable& symbols() const { return syms_; }

  /// Conductance `name` (nominal value `g0`) between nodes a and b.
  void addConductance(const std::string& name, double g0, std::size_t a, std::size_t b);
  /// Capacitance `name` between a and b (enters the matrix as s*c).
  void addCapacitance(const std::string& name, double c0, std::size_t a, std::size_t b);
  /// Transconductance: current gm * v(cp, cm) flowing from node `to` out of
  /// node `from` (i.e. injected into `to`).
  void addTransconductance(const std::string& name, double gm0, std::size_t from,
                           std::size_t to, std::size_t cp, std::size_t cm);

  /// Node-admittance matrix with ground eliminated ((n-1) x (n-1) SPoly).
  std::vector<std::vector<SPoly>> admittanceMatrix() const;

 private:
  struct Element {
    enum class Kind { G, C, Gm } kind;
    SymbolId sym;
    std::size_t a, b;      // terminal nodes (G/C) or from/to (Gm)
    std::size_t cp = 0, cm = 0;  // control nodes (Gm)
  };
  std::size_t nodeCount_;
  SymbolTable syms_;
  std::vector<Element> elems_;
};

/// A symbolic transfer function num(s)/den(s).
struct SymbolicTransfer {
  SPoly num;
  SPoly den;

  /// Numeric rational function at nominal symbol values.
  std::vector<double> numericNum(const SymbolTable& t) const { return num.evaluate(t); }
  std::vector<double> numericDen(const SymbolTable& t) const { return den.evaluate(t); }

  /// |H(j 2 pi f)| at nominal values.
  double magnitudeAt(const SymbolTable& t, double frequencyHz) const;

  /// ISAAC simplification: drop numerically negligible terms (relative
  /// threshold eps within each coefficient).
  SymbolicTransfer simplified(const SymbolTable& t, double eps) const {
    return {num.simplified(t, eps), den.simplified(t, eps)};
  }

  std::size_t termCount() const { return num.termCount() + den.termCount(); }
  std::string toString(const SymbolTable& t) const;

  /// Poles (roots of the denominator) and zeros (roots of the numerator) at
  /// nominal symbol values, in rad/s — the insight ISAAC's symbolic output
  /// was used to extract.
  std::vector<std::complex<double>> poles(const SymbolTable& t) const;
  std::vector<std::complex<double>> zeros(const SymbolTable& t) const;
};

/// Symbolic determinant of an SPoly matrix (subset dynamic program).
SPoly symbolicDeterminant(const std::vector<std::vector<SPoly>>& m);

/// Transfer function v(out) / i(in): unit AC current injected into `in`.
SymbolicTransfer transimpedance(const SmallSignalCircuit& c, std::size_t in,
                                std::size_t out);

/// Voltage transfer v(out) / v(in) with an ideal source driving node `in`.
SymbolicTransfer voltageTransfer(const SmallSignalCircuit& c, std::size_t in,
                                 std::size_t out);

}  // namespace amsyn::symbolic
