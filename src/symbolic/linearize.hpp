// Bridge from the transistor-level netlist to the symbolic analyzer:
// linearize every device at a DC operating point into named small-signal
// symbols (gm_M1, gds_M1, cgs_M1, ...) whose nominal values come from the
// simulator.  This is how ISAAC-generated equations stay numerically honest:
// simplification thresholds are evaluated against the real operating point.
#pragma once

#include <map>
#include <string>

#include "sim/dc.hpp"
#include "sim/mna.hpp"
#include "symbolic/analyze.hpp"

namespace amsyn::symbolic {

struct LinearizeOptions {
  bool includeCapacitances = true;
  bool includeBodyEffect = false;   ///< add gmb transconductances
  double minConductance = 1e-12;    ///< skip symbols with smaller nominals
};

/// Result of linearization: the symbolic circuit plus the mapping from
/// netlist node names to symbolic node indices.
struct LinearizedCircuit {
  SmallSignalCircuit circuit{1};
  std::map<std::string, std::size_t> nodeOf;

  std::size_t node(const std::string& name) const;
};

/// Linearize `mna`'s netlist at operating point `op`.  MOS devices become
/// gm/gds (+ optional gmb) and their capacitances; resistors become
/// conductances g_<name>; capacitors become c_<name>.  DC voltage sources
/// short their terminals together (AC ground); current sources are open.
LinearizedCircuit linearize(const sim::Mna& mna, const sim::DcResult& op,
                            const LinearizeOptions& opts = {});

}  // namespace amsyn::symbolic
