#include "symbolic/sympoly.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace amsyn::symbolic {

SymbolId SymbolTable::intern(const std::string& name, double nominal) {
  auto it = byName_.find(name);
  if (it != byName_.end()) {
    nominals_[it->second] = nominal;
    return it->second;
  }
  const SymbolId id = static_cast<SymbolId>(names_.size());
  names_.push_back(name);
  nominals_.push_back(nominal);
  byName_[name] = id;
  return id;
}

SymbolId SymbolTable::idOf(const std::string& name) const {
  auto it = byName_.find(name);
  if (it == byName_.end()) throw std::out_of_range("SymbolTable: unknown symbol " + name);
  return it->second;
}

SymSum SymSum::constant(double c) {
  SymSum s;
  if (c != 0.0) s.terms_[{}] = c;
  return s;
}

SymSum SymSum::symbol(SymbolId id) {
  SymSum s;
  s.terms_[{id}] = 1.0;
  return s;
}

void SymSum::add(const Term& t) {
  if (t.coefficient == 0.0) return;
  std::vector<SymbolId> key = t.symbols;
  std::sort(key.begin(), key.end());
  auto [it, inserted] = terms_.try_emplace(std::move(key), t.coefficient);
  if (!inserted) {
    it->second += t.coefficient;
    if (it->second == 0.0) terms_.erase(it);
  }
}

SymSum SymSum::operator+(const SymSum& rhs) const {
  SymSum out = *this;
  for (const auto& [k, v] : rhs.terms_) out.add(Term{k, v});
  return out;
}

SymSum SymSum::operator-(const SymSum& rhs) const { return *this + rhs.negated(); }

SymSum SymSum::negated() const {
  SymSum out = *this;
  for (auto& [k, v] : out.terms_) v = -v;
  return out;
}

SymSum SymSum::operator*(const SymSum& rhs) const {
  SymSum out;
  for (const auto& [ka, va] : terms_) {
    for (const auto& [kb, vb] : rhs.terms_) {
      std::vector<SymbolId> key;
      key.reserve(ka.size() + kb.size());
      std::merge(ka.begin(), ka.end(), kb.begin(), kb.end(), std::back_inserter(key));
      out.add(Term{std::move(key), va * vb});
    }
  }
  return out;
}

double SymSum::evaluate(const SymbolTable& table) const {
  double acc = 0.0;
  for (const auto& [k, v] : terms_) {
    double prod = v;
    for (SymbolId id : k) prod *= table.nominal(id);
    acc += prod;
  }
  return acc;
}

SymSum SymSum::simplified(const SymbolTable& table, double eps) const {
  // Magnitude of each term at nominal values.
  double maxMag = 0.0;
  std::vector<std::pair<const std::vector<SymbolId>*, double>> mags;
  for (const auto& [k, v] : terms_) {
    double prod = std::abs(v);
    for (SymbolId id : k) prod *= std::abs(table.nominal(id));
    mags.emplace_back(&k, prod);
    maxMag = std::max(maxMag, prod);
  }
  SymSum out;
  for (std::size_t i = 0; i < mags.size(); ++i) {
    if (mags[i].second >= eps * maxMag) {
      const auto& key = *mags[i].first;
      out.terms_[key] = terms_.at(key);
    }
  }
  return out;
}

std::string SymSum::toString(const SymbolTable& table) const {
  if (terms_.empty()) return "0";
  std::ostringstream out;
  bool first = true;
  for (const auto& [k, v] : terms_) {
    double coeff = v;
    if (first) {
      if (coeff < 0) out << "-";
    } else {
      out << (coeff < 0 ? " - " : " + ");
    }
    coeff = std::abs(coeff);
    first = false;
    bool needStar = false;
    if (coeff != 1.0 || k.empty()) {
      out << coeff;
      needStar = true;
    }
    for (SymbolId id : k) {
      if (needStar) out << "*";
      out << table.name(id);
      needStar = true;
    }
  }
  return out.str();
}

SPoly SPoly::sTimes(const SymSum& c) {
  SPoly p;
  p.coeffs_ = {SymSum{}, c};
  p.trim();
  return p;
}

bool SPoly::isZero() const {
  for (const auto& c : coeffs_)
    if (!c.isZero()) return false;
  return true;
}

const SymSum& SPoly::coefficient(std::size_t k) const {
  static const SymSum kZero{};
  return k < coeffs_.size() ? coeffs_[k] : kZero;
}

void SPoly::trim() {
  while (!coeffs_.empty() && coeffs_.back().isZero()) coeffs_.pop_back();
}

SPoly SPoly::operator+(const SPoly& rhs) const {
  SPoly out;
  out.coeffs_.resize(std::max(coeffs_.size(), rhs.coeffs_.size()));
  for (std::size_t k = 0; k < out.coeffs_.size(); ++k)
    out.coeffs_[k] = coefficient(k) + rhs.coefficient(k);
  out.trim();
  return out;
}

SPoly SPoly::operator-(const SPoly& rhs) const { return *this + rhs.negated(); }

SPoly SPoly::negated() const {
  SPoly out = *this;
  for (auto& c : out.coeffs_) c = c.negated();
  return out;
}

SPoly SPoly::operator*(const SPoly& rhs) const {
  SPoly out;
  if (isZero() || rhs.isZero()) return out;
  out.coeffs_.resize(coeffs_.size() + rhs.coeffs_.size() - 1);
  for (std::size_t i = 0; i < coeffs_.size(); ++i) {
    if (coeffs_[i].isZero()) continue;
    for (std::size_t j = 0; j < rhs.coeffs_.size(); ++j) {
      if (rhs.coeffs_[j].isZero()) continue;
      out.coeffs_[i + j] = out.coeffs_[i + j] + coeffs_[i] * rhs.coeffs_[j];
    }
  }
  out.trim();
  return out;
}

std::vector<double> SPoly::evaluate(const SymbolTable& table) const {
  std::vector<double> out;
  out.reserve(coeffs_.size());
  for (const auto& c : coeffs_) out.push_back(c.evaluate(table));
  if (out.empty()) out.push_back(0.0);
  return out;
}

SPoly SPoly::simplified(const SymbolTable& table, double eps) const {
  SPoly out = *this;
  for (auto& c : out.coeffs_) c = c.simplified(table, eps);
  out.trim();
  return out;
}

std::string SPoly::toString(const SymbolTable& table) const {
  if (isZero()) return "0";
  std::ostringstream out;
  bool first = true;
  for (std::size_t k = 0; k < coeffs_.size(); ++k) {
    if (coeffs_[k].isZero()) continue;
    if (!first) out << " + ";
    first = false;
    if (k == 0) {
      out << "(" << coeffs_[k].toString(table) << ")";
    } else {
      out << "s";
      if (k > 1) out << "^" << k;
      out << "*(" << coeffs_[k].toString(table) << ")";
    }
  }
  return out.str();
}

std::size_t SPoly::termCount() const {
  std::size_t n = 0;
  for (const auto& c : coeffs_) n += c.termCount();
  return n;
}

}  // namespace amsyn::symbolic
