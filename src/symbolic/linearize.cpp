#include "symbolic/linearize.hpp"

#include <numeric>
#include <stdexcept>
#include <vector>

namespace amsyn::symbolic {

using circuit::Device;
using circuit::DeviceType;
using circuit::NodeId;

std::size_t LinearizedCircuit::node(const std::string& name) const {
  auto it = nodeOf.find(name);
  if (it == nodeOf.end()) throw std::out_of_range("LinearizedCircuit: unknown node " + name);
  return it->second;
}

namespace {

/// Union-find over netlist nodes: DC voltage sources short their terminals
/// for small-signal purposes.
class NodeMerger {
 public:
  explicit NodeMerger(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t find(std::size_t a) {
    while (parent_[a] != a) a = parent_[a] = parent_[parent_[a]];
    return a;
  }
  void merge(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    // Keep ground (0) as the representative of its class.
    if (b == 0) std::swap(a, b);
    parent_[b] = a;
  }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

LinearizedCircuit linearize(const sim::Mna& mna, const sim::DcResult& op,
                            const LinearizeOptions& opts) {
  if (!op.converged) throw std::invalid_argument("linearize: op not converged");
  const auto& net = mna.netlist();

  NodeMerger merger(net.nodeCount());
  for (const Device& d : net.devices()) {
    // Pure DC supplies are AC grounds; sources carrying an AC stimulus are
    // signal inputs and must keep their node distinct.
    if (d.type == DeviceType::VSource && d.acMag == 0.0) merger.merge(d.nodes[0], d.nodes[1]);
    if (d.type == DeviceType::Vcvs || d.type == DeviceType::Inductor)
      throw std::invalid_argument("linearize: VCVS/inductor not supported (device " + d.name +
                                  ")");
  }

  // Assign compact symbolic indices to merged classes; ground class -> 0.
  std::vector<std::size_t> symIndex(net.nodeCount(), static_cast<std::size_t>(-1));
  std::size_t next = 1;
  symIndex[merger.find(circuit::kGround)] = 0;
  for (NodeId n = 0; n < net.nodeCount(); ++n) {
    const std::size_t root = merger.find(n);
    if (symIndex[root] == static_cast<std::size_t>(-1)) symIndex[root] = next++;
  }

  LinearizedCircuit out;
  out.circuit = SmallSignalCircuit(next);
  for (NodeId n = 0; n < net.nodeCount(); ++n)
    out.nodeOf[net.nodeName(n)] = symIndex[merger.find(n)];

  auto sNode = [&](NodeId n) { return symIndex[merger.find(n)]; };
  auto& c = out.circuit;
  const auto mosOps = mna.mosOperatingPoints(op.x);

  std::size_t mosIdx = 0;
  for (const Device& d : net.devices()) {
    switch (d.type) {
      case DeviceType::Resistor:
        c.addConductance("g_" + d.name, 1.0 / d.value, sNode(d.nodes[0]), sNode(d.nodes[1]));
        break;
      case DeviceType::Capacitor:
        if (opts.includeCapacitances && d.value > 0)
          c.addCapacitance("c_" + d.name, d.value, sNode(d.nodes[0]), sNode(d.nodes[1]));
        break;
      case DeviceType::Vccs:
        c.addTransconductance("gm_" + d.name, d.value, sNode(d.nodes[0]), sNode(d.nodes[1]),
                              sNode(d.nodes[2]), sNode(d.nodes[3]));
        break;
      case DeviceType::Mos: {
        const auto& mop = mosOps.at(mosIdx++).second;
        const std::size_t nd = sNode(d.nodes[0]), ng = sNode(d.nodes[1]),
                          ns = sNode(d.nodes[2]), nb = sNode(d.nodes[3]);
        // Drain current ids = gm vgs + gds vds (+ gmb vbs): gm injects into
        // the drain (leaves the source), i.e. current flows d -> s inside.
        if (mop.gm >= opts.minConductance)
          c.addTransconductance("gm_" + d.name, mop.gm, nd, ns, ng, ns);
        if (mop.gds >= opts.minConductance)
          c.addConductance("gds_" + d.name, mop.gds, nd, ns);
        if (opts.includeBodyEffect && mop.gmb >= opts.minConductance)
          c.addTransconductance("gmb_" + d.name, mop.gmb, nd, ns, nb, ns);
        if (opts.includeCapacitances) {
          if (mop.cgs > 0) c.addCapacitance("cgs_" + d.name, mop.cgs, ng, ns);
          if (mop.cgd > 0) c.addCapacitance("cgd_" + d.name, mop.cgd, ng, nd);
          if (mop.cgb > 0) c.addCapacitance("cgb_" + d.name, mop.cgb, ng, nb);
          if (mop.cdb > 0) c.addCapacitance("cdb_" + d.name, mop.cdb, nd, nb);
          if (mop.csb > 0) c.addCapacitance("csb_" + d.name, mop.csb, ns, nb);
        }
        break;
      }
      case DeviceType::Diode: {
        // Linearized diode conductance at the operating point.
        const double v =
            mna.nodeVoltage(op.x, d.nodes[0]) - mna.nodeVoltage(op.x, d.nodes[1]);
        const double vt = mna.process().kT() / 1.602176634e-19;
        const double g = d.diodeIs / vt * std::exp(std::min(v / vt, 40.0));
        if (g >= opts.minConductance)
          c.addConductance("gd_" + d.name, g, sNode(d.nodes[0]), sNode(d.nodes[1]));
        break;
      }
      case DeviceType::VSource:
      case DeviceType::ISource:
        break;  // AC short (already merged) / AC open
      default:
        break;
    }
  }
  return out;
}

}  // namespace amsyn::symbolic
