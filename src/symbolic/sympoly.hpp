// Symbolic sum-of-products arithmetic for ISAAC-style symbolic circuit
// analysis (Gielen, Walscharts & Sansen, JSSC 1989 — the paper's ref [12]).
//
// A small-signal transfer function of a linear(ized) circuit is a rational
// function in the Laplace variable s whose coefficients are polynomials in
// the circuit symbols (gm1, gds2, c3, ...).  We keep those coefficients in a
// canonical sum-of-products form: a map from a sorted multiset of symbol ids
// to a numeric multiplier.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace amsyn::symbolic {

using SymbolId = std::uint32_t;

/// Interning table of circuit symbols with nominal numeric values (used for
/// magnitude-based simplification and for numeric evaluation).
class SymbolTable {
 public:
  SymbolId intern(const std::string& name, double nominal);
  SymbolId idOf(const std::string& name) const;          ///< throws if unknown
  const std::string& name(SymbolId id) const { return names_.at(id); }
  double nominal(SymbolId id) const { return nominals_.at(id); }
  void setNominal(SymbolId id, double v) { nominals_.at(id) = v; }
  std::size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::vector<double> nominals_;
  std::map<std::string, SymbolId> byName_;
};

/// One product term: coefficient * prod(symbols).  Symbols sorted ascending
/// (a multiset — repeated ids mean powers).
struct Term {
  std::vector<SymbolId> symbols;
  double coefficient = 0.0;
};

/// Canonical symbolic sum of products.
class SymSum {
 public:
  SymSum() = default;
  /// A single numeric constant.
  static SymSum constant(double c);
  /// A single symbol.
  static SymSum symbol(SymbolId id);

  bool isZero() const { return terms_.empty(); }
  std::size_t termCount() const { return terms_.size(); }

  void add(const Term& t);
  SymSum operator+(const SymSum& rhs) const;
  SymSum operator-(const SymSum& rhs) const;
  SymSum operator*(const SymSum& rhs) const;
  SymSum negated() const;

  /// Numeric value with all symbols at their nominal values.
  double evaluate(const SymbolTable& table) const;

  /// Drop terms whose nominal magnitude is below `eps` times the largest
  /// term magnitude — the ISAAC simplification rule.
  SymSum simplified(const SymbolTable& table, double eps) const;

  /// Human-readable form, e.g. "gm1*gm2 - gds1*gds2".
  std::string toString(const SymbolTable& table) const;

  const std::map<std::vector<SymbolId>, double>& terms() const { return terms_; }

 private:
  std::map<std::vector<SymbolId>, double> terms_;
};

/// Polynomial in s with SymSum coefficients: sum_k coeff[k] s^k.
class SPoly {
 public:
  SPoly() = default;
  explicit SPoly(SymSum s0) : coeffs_{std::move(s0)} {}

  static SPoly sTimes(const SymSum& c);  ///< c * s

  bool isZero() const;
  std::size_t degree() const { return coeffs_.empty() ? 0 : coeffs_.size() - 1; }
  const SymSum& coefficient(std::size_t k) const;

  SPoly operator+(const SPoly& rhs) const;
  SPoly operator-(const SPoly& rhs) const;
  SPoly operator*(const SPoly& rhs) const;
  SPoly negated() const;

  /// Numeric polynomial in s at nominal symbol values.
  std::vector<double> evaluate(const SymbolTable& table) const;

  SPoly simplified(const SymbolTable& table, double eps) const;
  std::string toString(const SymbolTable& table) const;

  /// Total number of product terms across all s powers (the "size" of the
  /// expression a designer would have to read).
  std::size_t termCount() const;

 private:
  void trim();
  std::vector<SymSum> coeffs_;
};

}  // namespace amsyn::symbolic
