#include "layout/cell/modgen.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace amsyn::layout {

using circuit::MosType;
using circuit::Process;
using geom::CellMaster;
using geom::Coord;
using geom::Layer;
using geom::Pin;
using geom::Rect;
using geom::Shape;

Coord toGrid(double meters, const Process& proc) {
  return static_cast<Coord>(std::llround(meters / proc.lambda * kQuarter));
}

namespace {

constexpr Coord lam(int lambdas) { return static_cast<Coord>(lambdas) * kQuarter; }

/// Width of one contacted diffusion region: contact + enclosure both sides.
Coord contactRegionWidth(const Process& proc) {
  return lam(proc.ruleContactSize + 2 * proc.ruleDiffContactEnclosure);
}

void addContactColumn(CellMaster& m, Coord x, Coord y0, Coord y1, const std::string& net,
                      Layer diffLayer, const Process& proc) {
  const Coord w = contactRegionWidth(proc);
  // Metal1 landing pad over the contacts.
  m.shapes.push_back({Layer::Metal1, {x, y0, x + w, y1}, net});
  // Contact cuts, spaced one cut per 2*contactSize of height.
  const Coord cut = lam(proc.ruleContactSize);
  const Coord enc = lam(proc.ruleDiffContactEnclosure);
  for (Coord y = y0 + enc; y + cut <= y1 - enc; y += 2 * cut) {
    m.shapes.push_back({Layer::Contact, {x + enc, y, x + enc + cut, y + cut}, net});
  }
  m.pins.push_back(Pin{net, Layer::Metal1, {x, y0, x + w, y1}});
  (void)diffLayer;
}

}  // namespace

CellMaster generateMos(const std::string& name, const circuit::MosParams& mos,
                       const std::string& drainNet, const std::string& gateNet,
                       const std::string& sourceNet, const std::string& bulkNet,
                       const Process& proc, const MosGenOptions& opts) {
  if (opts.fingers < 1) throw std::invalid_argument("generateMos: fingers >= 1");
  CellMaster m;
  m.name = name;

  const int nf = opts.fingers;
  const Layer diff = mos.type == MosType::Nmos ? Layer::NDiff : Layer::PDiff;
  const Coord lg = std::max<Coord>(toGrid(mos.l, proc), lam(2));
  const Coord wFinger =
      std::max<Coord>(toGrid(mos.w * mos.m / nf, proc), lam(proc.ruleMinWidth));
  const Coord cw = contactRegionWidth(proc);
  const Coord ext = lam(proc.ruleGateExtension);

  // Diffusion strip with nf gates and nf+1 contacted regions.
  const Coord diffWidth = (nf + 1) * cw + nf * lg;
  const Coord y0 = 0, y1 = wFinger;
  m.shapes.push_back({diff, {0, y0, diffWidth, y1}, ""});

  // Contacted regions: alternate source / drain, source on the outside.
  Coord x = 0;
  for (int j = 0; j <= nf; ++j) {
    const std::string& net = (j % 2 == 0) ? sourceNet : drainNet;
    addContactColumn(m, x, y0, y1, net, diff, proc);
    x += cw;
    if (j < nf) {
      // Gate poly: vertical bar overlapping the diffusion plus extension.
      m.shapes.push_back({Layer::Poly, {x, y0 - ext, x + lg, y1 + ext}, gateNet});
      x += lg;
    }
  }

  // Gate strap along the top connecting every finger, with the gate pin.
  const Coord strapY0 = y1 + ext;
  const Coord strapY1 = strapY0 + lam(2);
  m.shapes.push_back({Layer::Poly, {cw, strapY0, diffWidth - cw, strapY1}, gateNet});
  for (int j = 0; j < nf; ++j) {
    const Coord gx = cw + j * (cw + lg);
    m.shapes.push_back({Layer::Poly, {gx, y1 + ext - lam(1), gx + lg, strapY1}, gateNet});
  }
  m.pins.push_back(Pin{gateNet, Layer::Poly, {cw, strapY0, diffWidth - cw, strapY1}});

  // Optional dummy poly fingers for matching.
  if (opts.dummies) {
    m.shapes.push_back({Layer::Poly, {-lg - lam(1), y0 - ext, -lam(1), y1 + ext}, ""});
    m.shapes.push_back(
        {Layer::Poly, {diffWidth + lam(1), y0 - ext, diffWidth + lam(1) + lg, y1 + ext}, ""});
  }

  // Bulk tie strip below the device.
  if (opts.includeBulkTie) {
    const Coord tieY1 = y0 - ext - lam(1);
    const Coord tieY0 = tieY1 - lam(3);
    const Layer tieDiff = mos.type == MosType::Nmos ? Layer::PDiff : Layer::NDiff;
    m.shapes.push_back({tieDiff, {0, tieY0, diffWidth, tieY1}, bulkNet});
    m.shapes.push_back({Layer::Metal1, {0, tieY0, diffWidth, tieY1}, bulkNet});
    m.pins.push_back(Pin{bulkNet, Layer::Metal1, {0, tieY0, diffWidth, tieY1}});
  }

  // Well for PMOS.
  if (mos.type == MosType::Pmos) {
    const Rect bb = m.boundingBox();
    m.shapes.push_back({Layer::NWell, bb.inflated(lam(proc.ruleWellEnclosure)), ""});
  }
  return m;
}

CellMaster generateMosStack(const std::string& name,
                            const std::vector<StackedDevice>& devices, const Process& proc) {
  if (devices.empty()) throw std::invalid_argument("generateMosStack: no devices");
  const MosType type = devices.front().mos.type;
  const double w = devices.front().mos.w * devices.front().mos.m;
  for (std::size_t i = 0; i + 1 < devices.size(); ++i) {
    if (devices[i].rightNet != devices[i + 1].leftNet)
      throw std::invalid_argument("generateMosStack: diffusion nets do not chain");
    if (devices[i + 1].mos.type != type)
      throw std::invalid_argument("generateMosStack: mixed device types");
    if (std::abs(devices[i + 1].mos.w * devices[i + 1].mos.m - w) > 0.05 * w)
      throw std::invalid_argument("generateMosStack: width mismatch > 5%");
  }

  CellMaster m;
  m.name = name;
  const Layer diff = type == MosType::Nmos ? Layer::NDiff : Layer::PDiff;
  const Coord wf = std::max<Coord>(toGrid(w, proc), lam(proc.ruleMinWidth));
  const Coord cw = contactRegionWidth(proc);
  const Coord ext = lam(proc.ruleGateExtension);

  Coord x = 0;
  // Leading contact.
  addContactColumn(m, x, 0, wf, devices.front().leftNet, diff, proc);
  x += cw;
  for (std::size_t i = 0; i < devices.size(); ++i) {
    const Coord lg = std::max<Coord>(toGrid(devices[i].mos.l, proc), lam(2));
    m.shapes.push_back({Layer::Poly, {x, -ext, x + lg, wf + ext}, devices[i].gateNet});
    // Per-device gate pin: a small poly tab above the gate.
    m.shapes.push_back(
        {Layer::Poly, {x, wf + ext, x + lg, wf + ext + lam(2)}, devices[i].gateNet});
    m.pins.push_back(
        Pin{devices[i].gateNet, Layer::Poly, {x, wf + ext, x + lg, wf + ext + lam(2)}});
    x += lg;
    addContactColumn(m, x, 0, wf, devices[i].rightNet, diff, proc);
    x += cw;
  }
  m.shapes.push_back({diff, {0, 0, x, wf}, ""});

  if (type == MosType::Pmos) {
    const Rect bb = m.boundingBox();
    m.shapes.push_back({Layer::NWell, bb.inflated(lam(proc.ruleWellEnclosure)), ""});
  }
  return m;
}

CellMaster generateResistor(const std::string& name, double ohms, const std::string& netA,
                            const std::string& netB, const Process& proc) {
  if (ohms <= 0) throw std::invalid_argument("generateResistor: non-positive value");
  CellMaster m;
  m.name = name;
  const double squares = ohms / proc.rsPoly;
  const Coord width = lam(proc.ruleMinWidth);
  const Coord totalLen = std::max<Coord>(
      static_cast<Coord>(std::llround(squares * static_cast<double>(width))), lam(4));

  // Serpentine: rows of at most 60 lambda, connected by end turns.
  const Coord rowLen = lam(60);
  const Coord pitch = width + lam(proc.ruleMinSpacing);
  Coord remaining = totalLen;
  Coord y = 0;
  bool leftToRight = true;
  Coord lastRowEndX = 0;
  while (remaining > 0) {
    const Coord len = std::min(remaining, rowLen);
    const Coord x0 = leftToRight ? 0 : rowLen - len;
    m.shapes.push_back({Layer::Poly, {x0, y, x0 + len, y + width}, name + ":body"});
    remaining -= len;
    lastRowEndX = leftToRight ? x0 + len : x0;
    if (remaining > 0) {
      // Turn: vertical connector at the row end.
      const Coord tx = leftToRight ? rowLen - width : 0;
      m.shapes.push_back({Layer::Poly, {tx, y, tx + width, y + pitch + width}, name + ":body"});
      y += pitch;
      leftToRight = !leftToRight;
    }
  }
  // Terminals.
  m.pins.push_back(Pin{netA, Layer::Poly, {0, 0, width, width}});
  m.pins.push_back(
      Pin{netB, Layer::Poly,
          {std::max<Coord>(lastRowEndX - width, 0), y, std::max<Coord>(lastRowEndX, width),
           y + width}});
  return m;
}

CellMaster generateCapacitor(const std::string& name, double farads, const std::string& netTop,
                             const std::string& netBottom, const Process& proc) {
  if (farads <= 0) throw std::invalid_argument("generateCapacitor: non-positive value");
  CellMaster m;
  m.name = name;
  // Poly-poly / MIM capacitor density ~1 fF/um^2.
  constexpr double kDensity = 1e-3;  // F/m^2 (poly-poly / MIM, ~1 fF/um^2)
  const double areaM2 = farads / kDensity;
  const double sideMeters = std::sqrt(areaM2);
  const Coord side = std::max<Coord>(toGrid(sideMeters, proc), lam(6));
  const Coord margin = lam(2);

  m.shapes.push_back({Layer::Metal1, {0, 0, side + 2 * margin, side + 2 * margin}, netBottom});
  m.shapes.push_back({Layer::Metal2, {margin, margin, margin + side, margin + side}, netTop});
  m.pins.push_back(Pin{netBottom, Layer::Metal1, {0, 0, margin, side + 2 * margin}});
  m.pins.push_back(
      Pin{netTop, Layer::Metal2, {margin, margin, margin + lam(2), margin + side}});
  return m;
}

CellMaster generateSubstrateContact(const std::string& name, const std::string& net,
                                    Coord length, const Process& proc) {
  CellMaster m;
  m.name = name;
  const Coord h = lam(proc.ruleContactSize + 2 * proc.ruleDiffContactEnclosure);
  m.shapes.push_back({Layer::Substrate, {0, 0, length, h}, net});
  m.shapes.push_back({Layer::Metal1, {0, 0, length, h}, net});
  m.pins.push_back(Pin{net, Layer::Metal1, {0, 0, length, h}});
  return m;
}

}  // namespace amsyn::layout
