// Device stacking: identify chains of MOS devices whose drain/source
// diffusions can be merged — the dominant parasitic-capacitance optimization
// in CMOS analog cell layout (section 3.1, "devicestacking, followed by
// stack placement").
//
// The circuit is rendered as a multigraph whose vertices are nets and whose
// edges are (channel) devices; a stack is a trail (edge-simple walk), and a
// stacking is a partition of the edges into trails.  Euler's theorem gives
// the minimum trail count: max(1, odd/2) per connected component.  Two
// algorithms are provided, matching the paper's refs:
//  * exact enumeration of all optimal stackings (Malavasi & Pandini [43]) —
//    exponential, intended for small compatible groups;
//  * a linear-time single-solution extractor (Basaran & Rutenbar [45]) —
//    fast enough for a placer's inner loop.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/netlist.hpp"

namespace amsyn::layout {

/// One compatible group of devices (same MOS type, near-equal width).
struct DiffusionGraph {
  circuit::MosType type = circuit::MosType::Nmos;
  double width = 0.0;                ///< representative channel width (W*m)
  std::vector<std::string> nets;     ///< vertex index -> net name
  struct Edge {
    std::string device;
    std::size_t a = 0, b = 0;        ///< net vertex indices (drain, source)
    circuit::MosParams mos;
    std::string gateNet;
    std::string bulkNet;
  };
  std::vector<Edge> edges;

  std::size_t oddDegreeVertices() const;
  /// Euler lower bound on the number of stacks for this graph.
  std::size_t minimumStacks() const;
  std::size_t connectedComponents() const;
};

/// Partition the netlist's MOS devices into compatible groups.  Devices
/// whose widths differ by more than `widthTolerance` (relative) land in
/// different groups, since merged diffusions require equal widths.
std::vector<DiffusionGraph> buildDiffusionGraphs(const circuit::Netlist& net,
                                                 double widthTolerance = 0.05);

/// One stack: an ordered chain of edges; `flipped` says whether the device's
/// drain faces left.
struct StackElement {
  std::size_t edge = 0;
  bool flipped = false;
};
struct Stack {
  std::vector<StackElement> elements;
};

struct Stacking {
  std::vector<Stack> stacks;
  /// Number of merged diffusion junctions (edges - stacks); the quantity
  /// both algorithms maximize.
  std::size_t mergeCount(std::size_t edgeCount) const {
    return edgeCount >= stacks.size() ? edgeCount - stacks.size() : 0;
  }
};

/// Exact: enumerate optimal stackings (minimum stack count) up to
/// `maxResults` distinct solutions.  Exponential in the group size; callers
/// should bound group sizes (~12 devices) as ref [43] did.
std::vector<Stacking> enumerateOptimalStackings(const DiffusionGraph& g,
                                                std::size_t maxResults = 16);

/// Heuristic: one optimal-count stacking in O(E) — pair odd vertices with
/// virtual edges, walk an Euler trail per component (Hierholzer), split at
/// the virtual edges.  Always achieves the Euler minimum.
Stacking greedyStacking(const DiffusionGraph& g);

/// Validate a stacking: every edge used exactly once and chains share nets.
bool stackingValid(const DiffusionGraph& g, const Stacking& s);

}  // namespace amsyn::layout
