// KOAN-style device placement (Cohn, Garrod, Rutenbar & Carley [34-36]):
// simulated annealing over device positions, orientations and layout
// variants (fold counts), with analog-specific cost terms — symmetric-pair
// mirroring, net-length estimation, and overlap penalties that anneal to
// zero so the final placement is legal.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "circuit/process.hpp"
#include "geom/layout.hpp"
#include "numeric/anneal.hpp"

namespace amsyn::layout {

/// A placeable object: one or more interchangeable masters (e.g. the same
/// transistor folded 1/2/4 ways — KOAN's dynamic folding move switches
/// between them mid-anneal).
struct PlacementComponent {
  std::string name;
  std::vector<geom::CellMaster> variants;
  /// Mirror partner for a matched pair (both components must name each
  /// other); pairs are kept mirror-symmetric about the cell's vertical axis.
  std::optional<std::string> symmetryPeer;
};

struct PlacerOptions {
  double areaWeight = 1.0;
  double wireWeight = 0.5;
  double overlapWeight = 4.0;      ///< grows during annealing
  double symmetryWeight = 2.0;
  geom::Coord gridStep = 8;        ///< placement grid (quarter-lambda units)
  geom::Coord spacing = 12;        ///< required clearance between devices (3 lambda)
  /// Performance-driven placement [42]: per-net wirelength weights derived
  /// from sensitivity analysis (extract::capacitanceSensitivity) — critical
  /// nets pull their devices together harder.  Unlisted nets weigh 1.
  std::map<std::string, double> netWeights;
  num::AnnealOptions anneal;
  std::uint64_t seed = 1;
};

struct Placement {
  std::vector<geom::CellInstance> instances;
  std::map<std::string, std::size_t> variantChosen;
  geom::Rect boundingBox;
  double wirelength = 0.0;   ///< half-perimeter estimate over all nets
  bool overlapFree = false;
  double symmetryError = 0.0;
  num::AnnealStats stats;
};

/// Place components.  Nets are read from the variant pins; every pin name
/// that appears on >= 2 components becomes a net for wirelength estimation.
/// `powerNets` are ignored for symmetry purposes but still contribute to
/// wirelength.
Placement placeCells(const std::vector<PlacementComponent>& components,
                     const PlacerOptions& opts = {});

/// Deterministic reference placement ("manual-style"): components in a row,
/// symmetric pairs adjacent, in declaration order.  Used as the baseline in
/// the Fig. 2 comparison and as a legal fallback.
Placement rowPlacement(const std::vector<PlacementComponent>& components,
                       const PlacerOptions& opts = {});

/// Total half-perimeter wirelength of a set of placed instances.
double estimateWirelength(const std::vector<geom::CellInstance>& instances);

/// Sensitivity-weighted wirelength (performance-driven placement, ref [42]).
double estimateWirelengthWeighted(const std::vector<geom::CellInstance>& instances,
                                  const std::map<std::string, double>& netWeights);

/// Do any two instances (inflated by `spacing`) overlap?
bool hasOverlaps(const std::vector<geom::CellInstance>& instances, geom::Coord spacing);

/// One-dimensional leftward compaction with symmetry groups (the analog
/// compaction of refs [48,49], simplified to the x axis): instances slide
/// left in x-order until `spacing` from any earlier instance whose y-span
/// overlaps; both members of a symmetric pair move by the same amount so
/// their mirror relation survives.
layout::Placement compactPlacement(
    const Placement& placement, geom::Coord spacing,
    const std::vector<std::pair<std::string, std::string>>& symmetricPairs = {});

}  // namespace amsyn::layout
