// Design-rule checking over assembled layouts: same-layer spacing and
// minimum width on the routing layers.  The macrocell tools' contract is
// "legal by construction"; this checker is the independent auditor the test
// suite and the benches use to hold them to it.
#pragma once

#include <string>
#include <vector>

#include "circuit/process.hpp"
#include "geom/layout.hpp"

namespace amsyn::layout {

struct DrcViolation {
  enum class Kind : std::uint8_t { Spacing, Width } kind = Kind::Spacing;
  geom::Layer layer = geom::Layer::Metal1;
  geom::Rect a, b;          ///< offending shapes (b unused for Width)
  std::string netA, netB;
  geom::Coord value = 0;     ///< measured spacing / width (quarter-lambda)
  geom::Coord required = 0;

  std::string describe() const;
};

struct DrcOptions {
  /// Check only these layers (empty = all routing layers).
  std::vector<geom::Layer> layers;
  /// Ignore shapes belonging to the same net (they may abut/overlap).
  bool sameNetExempt = true;
  /// Skip width checks (routers emit overlapping pads whose union is wide
  /// enough even when individual rects are thin).
  bool checkWidth = true;
};

/// Check same-layer spacing (process ruleMinSpacing) and minimum width
/// (ruleMinWidth) over all wires + instance shapes.
std::vector<DrcViolation> checkDesignRules(const geom::Layout& layout,
                                           const circuit::Process& proc,
                                           const DrcOptions& opts = {});

}  // namespace amsyn::layout
