// Procedural device-level module generators (the paper's earliest cell-
// layout strategy, ref [32], and the primitive supplier for every macrocell
// tool after it: KOAN deliberately kept "a very small library of device
// generators" and moved optimization into the placer).
//
// All geometry is produced on the quarter-lambda integer grid
// (1 Coord = lambda/4).  The local origin is the lower-left corner of the
// generated master.
#pragma once

#include <string>
#include <vector>

#include "circuit/netlist.hpp"
#include "circuit/process.hpp"
#include "geom/layout.hpp"

namespace amsyn::layout {

/// Quarter-lambda per lambda.
inline constexpr geom::Coord kQuarter = 4;

/// Convert meters to quarter-lambda grid units for a given process.
geom::Coord toGrid(double meters, const circuit::Process& proc);

struct MosGenOptions {
  int fingers = 1;        ///< gate folding (KOAN's dynamic fold move re-generates)
  bool includeBulkTie = true;
  bool dummies = false;   ///< add dummy gates on both ends (matching practice)
};

/// Generate one MOS device master.  Net names are attached to the pins so
/// the placer and router can work from the master alone.
/// Terminals: drain, gate, source, bulk net names.
geom::CellMaster generateMos(const std::string& name, const circuit::MosParams& mos,
                             const std::string& drainNet, const std::string& gateNet,
                             const std::string& sourceNet, const std::string& bulkNet,
                             const circuit::Process& proc, const MosGenOptions& opts = {});

/// Generate a merged diffusion stack: devices[i] and devices[i+1] share a
/// diffusion region carrying `sharedNet[i]`.  All devices must be the same
/// type and (near-)equal width — the stack extractor guarantees this.
struct StackedDevice {
  std::string name;
  circuit::MosParams mos;
  std::string leftNet;   ///< diffusion net on the left of the gate
  std::string gateNet;
  std::string rightNet;  ///< diffusion net on the right
  std::string bulkNet;
};
geom::CellMaster generateMosStack(const std::string& name,
                                  const std::vector<StackedDevice>& devices,
                                  const circuit::Process& proc);

/// Poly serpentine resistor sized from the process sheet resistance.
geom::CellMaster generateResistor(const std::string& name, double ohms,
                                  const std::string& netA, const std::string& netB,
                                  const circuit::Process& proc);

/// Metal1/metal2 parallel-plate capacitor.
geom::CellMaster generateCapacitor(const std::string& name, double farads,
                                   const std::string& netTop, const std::string& netBottom,
                                   const circuit::Process& proc);

/// Substrate/well contact ring segment (guard ring piece).
geom::CellMaster generateSubstrateContact(const std::string& name, const std::string& net,
                                          geom::Coord length, const circuit::Process& proc);

}  // namespace amsyn::layout
