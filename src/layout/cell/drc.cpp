#include "layout/cell/drc.hpp"

#include <algorithm>
#include <sstream>

namespace amsyn::layout {

using geom::Coord;
using geom::Layer;
using geom::Rect;
using geom::Shape;

std::string DrcViolation::describe() const {
  std::ostringstream out;
  out << (kind == Kind::Spacing ? "spacing" : "width") << " on " << geom::toString(layer)
      << ": " << value << " < " << required;
  if (kind == Kind::Spacing) out << " between '" << netA << "' and '" << netB << "'";
  else out << " on '" << netA << "'";
  return out.str();
}

std::vector<DrcViolation> checkDesignRules(const geom::Layout& layout,
                                           const circuit::Process& proc,
                                           const DrcOptions& opts) {
  std::vector<DrcViolation> out;
  const Coord minSpace = static_cast<Coord>(proc.ruleMinSpacing) * 4;
  const Coord minWidth = static_cast<Coord>(proc.ruleMinWidth) * 4;

  auto layerEnabled = [&](Layer l) {
    if (!geom::isRoutingLayer(l)) return false;
    if (opts.layers.empty()) return true;
    return std::find(opts.layers.begin(), opts.layers.end(), l) != opts.layers.end();
  };

  std::vector<Shape> shapes;
  for (const auto& w : layout.wires)
    if (layerEnabled(w.layer)) shapes.push_back(w);
  for (const auto& inst : layout.instances)
    for (const auto& s : inst.transformedShapes())
      if (layerEnabled(s.layer)) shapes.push_back(s);

  // Width checks.
  if (opts.checkWidth) {
    for (const auto& s : shapes) {
      const Coord w = std::min(s.rect.width(), s.rect.height());
      if (w < minWidth) {
        DrcViolation v;
        v.kind = DrcViolation::Kind::Width;
        v.layer = s.layer;
        v.a = s.rect;
        v.netA = s.net;
        v.value = w;
        v.required = minWidth;
        out.push_back(std::move(v));
      }
    }
  }

  // Pairwise spacing (cells are small; quadratic is fine and exact).
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    for (std::size_t j = i + 1; j < shapes.size(); ++j) {
      const Shape& a = shapes[i];
      const Shape& b = shapes[j];
      if (a.layer != b.layer) continue;
      if (opts.sameNetExempt && a.net == b.net) continue;
      if (a.rect.overlaps(b.rect)) {
        DrcViolation v;
        v.layer = a.layer;
        v.a = a.rect;
        v.b = b.rect;
        v.netA = a.net;
        v.netB = b.net;
        v.value = 0;
        v.required = minSpace;
        out.push_back(std::move(v));
        continue;
      }
      const Coord gap = a.rect.gapTo(b.rect);
      if (gap < minSpace) {
        DrcViolation v;
        v.layer = a.layer;
        v.a = a.rect;
        v.b = b.rect;
        v.netA = a.net;
        v.netB = b.net;
        v.value = gap;
        v.required = minSpace;
        out.push_back(std::move(v));
      }
    }
  }
  return out;
}

}  // namespace amsyn::layout
