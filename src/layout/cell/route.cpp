#include "layout/cell/route.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <optional>
#include <tuple>
#include <queue>
#include <set>
#include <stdexcept>

#include "core/metrics.hpp"
#include "core/trace.hpp"

namespace amsyn::layout {

using geom::CellInstance;
using geom::Coord;
using geom::Layer;
using geom::Rect;
using geom::Shape;

namespace {

constexpr int kLayers = 3;  // 0 = poly, 1 = metal1, 2 = metal2
constexpr int kFree = -1;
constexpr int kBlocked = -2;

Layer layerOf(int l) {
  switch (l) {
    case 0: return Layer::Poly;
    case 1: return Layer::Metal1;
    default: return Layer::Metal2;
  }
}

int indexOf(Layer l) {
  switch (l) {
    case Layer::Poly: return 0;
    case Layer::Metal1: return 1;
    case Layer::Metal2: return 2;
    default: return -1;
  }
}

struct Node {
  int layer = 0, x = 0, y = 0;
  friend bool operator==(const Node&, const Node&) = default;
  friend bool operator<(const Node& a, const Node& b) {
    return std::tie(a.layer, a.x, a.y) < std::tie(b.layer, b.x, b.y);
  }
};

class Grid {
 public:
  Grid(Rect area, Coord pitch) : area_(area), pitch_(pitch) {
    nx_ = static_cast<int>(area.width() / pitch) + 1;
    ny_ = static_cast<int>(area.height() / pitch) + 1;
    owner_.assign(static_cast<std::size_t>(kLayers) * nx_ * ny_, kFree);
    overDevice_.assign(static_cast<std::size_t>(nx_) * ny_, 0);
  }

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  bool inBounds(const Node& n) const {
    return n.layer >= 0 && n.layer < kLayers && n.x >= 0 && n.x < nx_ && n.y >= 0 &&
           n.y < ny_;
  }
  geom::Point world(const Node& n) const {
    return {area_.x0 + static_cast<Coord>(n.x) * pitch_,
            area_.y0 + static_cast<Coord>(n.y) * pitch_};
  }
  Node nearest(int layer, geom::Point p) const {
    const int x = static_cast<int>((p.x - area_.x0 + pitch_ / 2) / pitch_);
    const int y = static_cast<int>((p.y - area_.y0 + pitch_ / 2) / pitch_);
    return {layer, std::clamp(x, 0, nx_ - 1), std::clamp(y, 0, ny_ - 1)};
  }

  int& owner(const Node& n) {
    return owner_[(static_cast<std::size_t>(n.layer) * nx_ + n.x) * ny_ + n.y];
  }
  int owner(const Node& n) const {
    return owner_[(static_cast<std::size_t>(n.layer) * nx_ + n.x) * ny_ + n.y];
  }
  void setOverDevice(int x, int y) { overDevice_[static_cast<std::size_t>(x) * ny_ + y] = 1; }
  bool overDevice(int x, int y) const {
    return overDevice_[static_cast<std::size_t>(x) * ny_ + y] != 0;
  }

  /// Mark every node whose center lies inside `r` on grid layer `l`.
  template <typename Fn>
  void forNodesIn(int l, const Rect& r, Fn&& fn) {
    const int x0 = std::max(0, static_cast<int>((r.x0 - area_.x0 + pitch_ - 1) / pitch_));
    const int y0 = std::max(0, static_cast<int>((r.y0 - area_.y0 + pitch_ - 1) / pitch_));
    const int x1 = std::min<int>(nx_ - 1, static_cast<int>((r.x1 - area_.x0) / pitch_));
    const int y1 = std::min<int>(ny_ - 1, static_cast<int>((r.y1 - area_.y0) / pitch_));
    for (int x = x0; x <= x1; ++x)
      for (int y = y0; y <= y1; ++y) {
        const geom::Point c = world({l, x, y});
        if (r.contains(c)) fn(Node{l, x, y});
      }
  }

 private:
  Rect area_;
  Coord pitch_;
  int nx_ = 0, ny_ = 0;
  std::vector<int> owner_;       // kFree / kBlocked / net index
  std::vector<char> overDevice_;
};

}  // namespace

RouteResult routeCells(const std::vector<CellInstance>& placed,
                       const std::vector<RouteNet>& nets, const circuit::Process& proc,
                       const RouterOptions& opts) {
  AMSYN_SPAN("routing");
  std::uint64_t expansions = 0;  // maze-search node visits, all nets/passes
  RouteResult result;
  result.layout.instances = placed;

  Rect area;
  for (const auto& inst : placed) area = area.unionWith(inst.boundingBox());
  area = area.inflated(opts.margin);

  // --- collect pins per net ---
  std::map<std::string, std::vector<geom::Pin>> pinsOf;
  for (const auto& inst : placed)
    for (const auto& pin : inst.transformedPins()) pinsOf[pin.name].push_back(pin);

  // Net indices and class lookup.
  std::map<std::string, int> netIndex;
  for (std::size_t i = 0; i < nets.size(); ++i) netIndex[nets[i].name] = static_cast<int>(i);
  auto classOf = [&](int idx) { return nets[static_cast<std::size_t>(idx)].wireClass; };

  const Coord axisX = area.center().x;  // symmetry axis for mirrored nets

  // Routing passes with rip-up: failed nets get routed first next pass.
  std::vector<std::size_t> order(nets.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::map<std::string, std::vector<Node>> pathsOf;  // final paths per net
  std::map<std::string, bool> symRealized;

  for (std::size_t pass = 0; pass < opts.maxPasses; ++pass) {
    pathsOf.clear();
    symRealized.clear();
    Grid grid(area, opts.pitch);

    // --- block device geometry ---
    for (const auto& inst : placed) {
      for (const auto& shape : inst.transformedShapes()) {
        const Rect grown = shape.rect.inflated(opts.wireWidth / 2 + 2);
        switch (shape.layer) {
          case Layer::Poly:
          case Layer::NDiff:
          case Layer::PDiff:
            grid.forNodesIn(0, grown, [&](Node n) { grid.owner(n) = kBlocked; });
            break;
          case Layer::Metal1:
          case Layer::Contact:
            grid.forNodesIn(1, grown, [&](Node n) { grid.owner(n) = kBlocked; });
            break;
          case Layer::Metal2:
          case Layer::Via:
            grid.forNodesIn(2, grown, [&](Node n) { grid.owner(n) = kBlocked; });
            break;
          default:
            break;
        }
      }
      // Metal2 over the device body is allowed but penalized.
      const Rect bb = inst.boundingBox();
      grid.forNodesIn(2, bb, [&](Node n) { grid.setOverDevice(n.x, n.y); });
    }

    // --- register pin nodes (pins are legal entry points for their net) ---
    std::map<std::string, std::vector<std::vector<Node>>> pinNodes;  // net -> pin -> nodes
    for (const auto& rn : nets) {
      auto pit = pinsOf.find(rn.name);
      if (pit == pinsOf.end() || pit->second.size() < 2) continue;
      auto& slots = pinNodes[rn.name];
      for (const auto& pin : pit->second) {
        std::vector<Node> nodes;
        const int l = indexOf(pin.layer);
        if (l < 0) continue;
        grid.forNodesIn(l, pin.rect, [&](Node n) { nodes.push_back(n); });
        if (nodes.empty()) nodes.push_back(grid.nearest(l, pin.rect.center()));
        for (const Node& n : nodes) grid.owner(n) = netIndex[rn.name];
        slots.push_back(std::move(nodes));
      }
    }

    // --- maze-route one net ---
    auto routeNet = [&](std::size_t netIdx) -> bool {
      const RouteNet& rn = nets[netIdx];
      auto it = pinNodes.find(rn.name);
      if (it == pinNodes.end()) return true;  // nothing to do (single pin)
      const auto& slots = it->second;
      const int me = static_cast<int>(netIdx);

      std::set<Node> connected(slots[0].begin(), slots[0].end());
      std::vector<Node> allSegments;

      for (std::size_t t = 1; t < slots.size(); ++t) {
        // Dijkstra from the connected component to pin t's nodes.
        std::set<Node> targets(slots[t].begin(), slots[t].end());
        std::map<Node, int> dist;
        std::map<Node, Node> parent;
        using QE = std::pair<int, Node>;
        std::priority_queue<QE, std::vector<QE>, std::greater<>> pq;
        for (const Node& s : connected) {
          dist[s] = 0;
          pq.push({0, s});
        }
        std::optional<Node> found;
        while (!pq.empty()) {
          const auto [d, n] = pq.top();
          pq.pop();
          ++expansions;
          if (d != dist[n]) continue;
          if (targets.count(n)) {
            found = n;
            break;
          }
          const Node nbrs[6] = {{n.layer, n.x + 1, n.y}, {n.layer, n.x - 1, n.y},
                                {n.layer, n.x, n.y + 1}, {n.layer, n.x, n.y - 1},
                                {n.layer + 1, n.x, n.y}, {n.layer - 1, n.x, n.y}};
          for (const Node& m : nbrs) {
            if (!grid.inBounds(m)) continue;
            const int own = grid.owner(m);
            if (own == kBlocked || (own >= 0 && own != me)) continue;
            int step = (m.layer == n.layer) ? 2 : opts.viaCost;
            if (m.layer == 0) step += opts.polyPenalty;
            if (m.layer == 2 && grid.overDevice(m.x, m.y)) step += opts.overDevicePenalty;
            // Crosstalk: entering a node whose planar neighbors carry an
            // incompatible net.
            const Node adj[4] = {{m.layer, m.x + 1, m.y}, {m.layer, m.x - 1, m.y},
                                 {m.layer, m.x, m.y + 1}, {m.layer, m.x, m.y - 1}};
            for (const Node& a : adj) {
              if (!grid.inBounds(a)) continue;
              const int other = grid.owner(a);
              if (other >= 0 && other != me &&
                  incompatible(classOf(other), rn.wireClass))
                step += opts.crosstalkPenalty;
            }
            // ROAD mode: capacitance-bounded nets pay extra per unit length,
            // biasing them toward short, low-parasitic paths.
            if (rn.capBound > 0.0) step += 2;
            const int nd = d + step;
            auto dit = dist.find(m);
            if (dit == dist.end() || nd < dit->second) {
              dist[m] = nd;
              parent[m] = n;
              pq.push({nd, m});
            }
          }
        }
        if (!found) return false;
        // Trace back and claim the path.
        Node cur = *found;
        while (!connected.count(cur)) {
          connected.insert(cur);
          allSegments.push_back(cur);
          grid.owner(cur) = me;
          auto pIt = parent.find(cur);
          if (pIt == parent.end()) break;
          cur = pIt->second;
        }
        for (const Node& n : slots[t]) connected.insert(n);
      }
      // Record the pin nodes too so geometry connects to the pads.
      for (const auto& slot : slots)
        for (const Node& n : slot) allSegments.push_back(n);
      pathsOf[rn.name] = std::move(allSegments);
      return true;
    };

    // Try mirroring a symmetric net from its already-routed peer.
    auto mirrorNet = [&](std::size_t netIdx) -> bool {
      const RouteNet& rn = nets[netIdx];
      if (!rn.symmetricPeer) return false;
      auto peerPath = pathsOf.find(*rn.symmetricPeer);
      if (peerPath == pathsOf.end()) return false;
      const int me = static_cast<int>(netIdx);

      std::vector<Node> mirroredNodes;
      for (const Node& n : peerPath->second) {
        const geom::Point w = grid.world(n);
        const geom::Point mw = geom::mirrorX(w, axisX);
        const Node m = grid.nearest(n.layer, mw);
        const int own = grid.owner(m);
        if (own == kBlocked || (own >= 0 && own != me)) return false;
        mirroredNodes.push_back(m);
      }
      for (const Node& m : mirroredNodes) grid.owner(m) = me;
      // The mirrored cloud must touch all of this net's pins.
      auto it = pinNodes.find(rn.name);
      if (it != pinNodes.end()) {
        std::set<Node> cloud(mirroredNodes.begin(), mirroredNodes.end());
        for (const auto& slot : it->second) {
          bool touched = false;
          for (const Node& n : slot)
            if (cloud.count(n)) touched = true;
          if (!touched) {
            for (const Node& m : mirroredNodes)
              if (!cloud.count(m)) grid.owner(m) = kFree;
            return false;
          }
        }
      }
      pathsOf[rn.name] = std::move(mirroredNodes);
      return true;
    };

    std::vector<std::size_t> failed;
    for (std::size_t oi = 0; oi < order.size(); ++oi) {
      const std::size_t netIdx = order[oi];
      const RouteNet& rn = nets[netIdx];
      bool ok = false;
      if (rn.symmetricPeer && mirrorNet(netIdx)) {
        ok = true;
        symRealized[rn.name] = true;
      } else {
        ok = routeNet(netIdx);
        symRealized[rn.name] = false;
      }
      if (!ok) failed.push_back(netIdx);
    }

    if (failed.empty() || pass + 1 == opts.maxPasses) {
      // --- emit geometry and reports from this pass ---
      result.nets.clear();
      result.layout.wires.clear();
      double exposure = 0.0;

      for (std::size_t i = 0; i < nets.size(); ++i) {
        const RouteNet& rn = nets[i];
        NetReport rep;
        rep.routed = std::find(failed.begin(), failed.end(), i) == failed.end() &&
                     pathsOf.count(rn.name);
        rep.symmetricRealized = symRealized.count(rn.name) && symRealized[rn.name];
        if (pathsOf.count(rn.name)) {
          const auto& path = pathsOf[rn.name];
          std::set<Node> cloud(path.begin(), path.end());
          const Coord h = opts.wireWidth / 2;
          for (const Node& n : cloud) {
            const geom::Point w = grid.world(n);
            // Pad at the node plus segments toward +x/+y cloud neighbors.
            result.layout.wires.push_back(
                Shape{layerOf(n.layer), {w.x - h, w.y - h, w.x + h, w.y + h}, rn.name});
            if (cloud.count({n.layer, n.x + 1, n.y}))
              result.layout.wires.push_back(
                  Shape{layerOf(n.layer),
                        {w.x - h, w.y - h, w.x + opts.pitch + h, w.y + h}, rn.name});
            if (cloud.count({n.layer, n.x, n.y + 1}))
              result.layout.wires.push_back(
                  Shape{layerOf(n.layer),
                        {w.x - h, w.y - h, w.x + h, w.y + opts.pitch + h}, rn.name});
            // Vias: node present on the next layer up at the same (x, y).
            if (cloud.count({n.layer + 1, n.x, n.y})) {
              ++rep.vias;
              result.layout.wires.push_back(
                  Shape{n.layer == 0 ? Layer::Contact : Layer::Via,
                        {w.x - h, w.y - h, w.x + h, w.y + h}, rn.name});
            }
          }
          // Straps from each physical pin to its grid entry node (pins can
          // sit off-grid; the nearest-node fallback needs a jumper).
          if (auto pnIt = pinNodes.find(rn.name); pnIt != pinNodes.end()) {
            const auto& physical = pinsOf[rn.name];
            for (std::size_t pi = 0;
                 pi < pnIt->second.size() && pi < physical.size(); ++pi) {
              if (pnIt->second[pi].empty()) continue;
              const Node n0 = pnIt->second[pi].front();
              const geom::Point w = grid.world(n0);
              const geom::Point pc = physical[pi].rect.center();
              result.layout.wires.push_back(
                  Shape{physical[pi].layer,
                        {std::min(w.x, pc.x) - h, pc.y - h, std::max(w.x, pc.x) + h,
                         pc.y + h},
                        rn.name});
              result.layout.wires.push_back(
                  Shape{physical[pi].layer,
                        {w.x - h, std::min(w.y, pc.y) - h, w.x + h,
                         std::max(w.y, pc.y) + h},
                        rn.name});
            }
          }
          rep.lengthLambda =
              static_cast<double>(cloud.size()) * static_cast<double>(opts.pitch) / 4.0;
          // Ground-cap estimate: area + fringe of the drawn wire.
          const double lenM = rep.lengthLambda * proc.lambda;
          const double wM = static_cast<double>(opts.wireWidth) / 4.0 * proc.lambda;
          rep.estimatedCap = lenM * wM * proc.caMetal1 + 2.0 * lenM * proc.cfMetal1;
          rep.capBoundMet = rn.capBound <= 0.0 || rep.estimatedCap <= rn.capBound;
          result.totalLengthLambda += rep.lengthLambda;

          // Crosstalk exposure against previously-reported nets.
          for (const Node& n : cloud) {
            const Node adj[4] = {{n.layer, n.x + 1, n.y}, {n.layer, n.x - 1, n.y},
                                 {n.layer, n.x, n.y + 1}, {n.layer, n.x, n.y - 1}};
            for (const Node& a : adj) {
              if (!grid.inBounds(a)) continue;
              const int other = grid.owner(a);
              if (other >= 0 && other != static_cast<int>(i) &&
                  incompatible(classOf(other), rn.wireClass))
                exposure += static_cast<double>(opts.pitch) / 4.0 / 2.0;  // half per side
            }
          }
        }
        result.nets[rn.name] = rep;
      }
      result.crosstalkExposureLambda = exposure;
      result.allRouted = failed.empty();
      // One registry touch per routing run: the maze loop itself only bumps
      // a local tally.
      static const auto cExpansions =
          core::metrics::registry().counter("route.expansions");
      core::metrics::add(cExpansions, expansions);
      return result;
    }

    // Re-order: failed nets first on the next pass.
    std::vector<std::size_t> next = failed;
    for (std::size_t i : order)
      if (std::find(failed.begin(), failed.end(), i) == failed.end()) next.push_back(i);
    order = std::move(next);
  }
  return result;  // unreachable: loop always returns on the last pass
}

}  // namespace amsyn::layout
