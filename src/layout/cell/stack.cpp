#include "layout/cell/stack.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <set>
#include <stdexcept>

namespace amsyn::layout {

using circuit::Device;
using circuit::DeviceType;

std::size_t DiffusionGraph::oddDegreeVertices() const {
  std::vector<std::size_t> degree(nets.size(), 0);
  for (const Edge& e : edges) {
    ++degree[e.a];
    ++degree[e.b];
  }
  return static_cast<std::size_t>(
      std::count_if(degree.begin(), degree.end(), [](std::size_t d) { return d % 2 == 1; }));
}

namespace {

/// Union-find over graph vertices.
struct Dsu {
  std::vector<std::size_t> parent;
  explicit Dsu(std::size_t n) : parent(n) { std::iota(parent.begin(), parent.end(), 0u); }
  std::size_t find(std::size_t a) {
    while (parent[a] != a) a = parent[a] = parent[parent[a]];
    return a;
  }
  void merge(std::size_t a, std::size_t b) { parent[find(a)] = find(b); }
};

}  // namespace

std::size_t DiffusionGraph::connectedComponents() const {
  if (edges.empty()) return 0;
  Dsu dsu(nets.size());
  std::vector<bool> touched(nets.size(), false);
  for (const Edge& e : edges) {
    dsu.merge(e.a, e.b);
    touched[e.a] = touched[e.b] = true;
  }
  std::set<std::size_t> roots;
  for (std::size_t v = 0; v < nets.size(); ++v)
    if (touched[v]) roots.insert(dsu.find(v));
  return roots.size();
}

std::size_t DiffusionGraph::minimumStacks() const {
  if (edges.empty()) return 0;
  // Per component: max(1, odd/2).
  Dsu dsu(nets.size());
  std::vector<bool> touched(nets.size(), false);
  std::vector<std::size_t> degree(nets.size(), 0);
  for (const Edge& e : edges) {
    dsu.merge(e.a, e.b);
    touched[e.a] = touched[e.b] = true;
    ++degree[e.a];
    ++degree[e.b];
  }
  std::map<std::size_t, std::size_t> oddPerComp;
  std::set<std::size_t> comps;
  for (std::size_t v = 0; v < nets.size(); ++v) {
    if (!touched[v]) continue;
    const std::size_t root = dsu.find(v);
    comps.insert(root);
    if (degree[v] % 2 == 1) ++oddPerComp[root];
  }
  std::size_t total = 0;
  for (std::size_t c : comps) {
    const std::size_t odd = oddPerComp.count(c) ? oddPerComp[c] : 0;
    total += std::max<std::size_t>(1, odd / 2);
  }
  return total;
}

std::vector<DiffusionGraph> buildDiffusionGraphs(const circuit::Netlist& net,
                                                 double widthTolerance) {
  std::vector<DiffusionGraph> graphs;
  for (const Device& d : net.devices()) {
    if (d.type != DeviceType::Mos) continue;
    const double w = d.mos.w * d.mos.m;
    DiffusionGraph* g = nullptr;
    for (auto& cand : graphs) {
      if (cand.type == d.mos.type &&
          std::abs(cand.width - w) <= widthTolerance * std::max(cand.width, w)) {
        g = &cand;
        break;
      }
    }
    if (!g) {
      graphs.push_back(DiffusionGraph{d.mos.type, w, {}, {}});
      g = &graphs.back();
    }
    auto vertex = [&](const std::string& name) -> std::size_t {
      for (std::size_t i = 0; i < g->nets.size(); ++i)
        if (g->nets[i] == name) return i;
      g->nets.push_back(name);
      return g->nets.size() - 1;
    };
    DiffusionGraph::Edge e;
    e.device = d.name;
    e.a = vertex(net.nodeName(d.nodes[0]));  // drain
    e.b = vertex(net.nodeName(d.nodes[2]));  // source
    e.mos = d.mos;
    e.gateNet = net.nodeName(d.nodes[1]);
    e.bulkNet = net.nodeName(d.nodes[3]);
    g->edges.push_back(std::move(e));
  }
  return graphs;
}

bool stackingValid(const DiffusionGraph& g, const Stacking& s) {
  std::vector<bool> used(g.edges.size(), false);
  std::size_t count = 0;
  for (const Stack& st : s.stacks) {
    if (st.elements.empty()) return false;
    std::size_t prevRight = 0;
    for (std::size_t i = 0; i < st.elements.size(); ++i) {
      const auto& el = st.elements[i];
      if (el.edge >= g.edges.size() || used[el.edge]) return false;
      used[el.edge] = true;
      ++count;
      const auto& e = g.edges[el.edge];
      const std::size_t left = el.flipped ? e.b : e.a;
      const std::size_t right = el.flipped ? e.a : e.b;
      if (i > 0 && left != prevRight) return false;
      prevRight = right;
    }
  }
  return count == g.edges.size();
}

Stacking greedyStacking(const DiffusionGraph& g) {
  Stacking result;
  if (g.edges.empty()) return result;
  const std::size_t nV = g.nets.size();
  const std::size_t nReal = g.edges.size();

  // Adjacency with virtual edges pairing odd vertices per component.
  struct Arc {
    std::size_t to;
    std::size_t edge;   // >= nReal means virtual
  };
  std::vector<std::vector<Arc>> adj(nV);
  auto addEdge = [&](std::size_t a, std::size_t b, std::size_t id) {
    adj[a].push_back({b, id});
    adj[b].push_back({a, id});
  };
  for (std::size_t i = 0; i < nReal; ++i) addEdge(g.edges[i].a, g.edges[i].b, i);

  // Pair odd-degree vertices within each component.
  Dsu dsu(nV);
  for (const auto& e : g.edges) dsu.merge(e.a, e.b);
  std::map<std::size_t, std::vector<std::size_t>> oddByComp;
  for (std::size_t v = 0; v < nV; ++v)
    if (adj[v].size() % 2 == 1) oddByComp[dsu.find(v)].push_back(v);
  std::size_t nextId = nReal;
  for (auto& [root, odds] : oddByComp) {
    (void)root;
    for (std::size_t i = 0; i + 1 < odds.size(); i += 2)
      addEdge(odds[i], odds[i + 1], nextId++);
  }
  const std::size_t totalEdges = nextId;

  // Hierholzer per component, starting at any vertex with edges.
  std::vector<bool> used(totalEdges, false);
  std::vector<std::size_t> cursor(nV, 0);
  std::vector<bool> visited(nV, false);

  for (std::size_t start = 0; start < nV; ++start) {
    if (adj[start].empty() || visited[dsu.find(start)]) continue;
    visited[dsu.find(start)] = true;

    // Iterative Hierholzer producing the circuit as a sequence of arcs.
    std::vector<std::pair<std::size_t, std::size_t>> circuit;  // (fromVertex, edgeId)
    std::vector<std::pair<std::size_t, std::size_t>> stackArc;
    std::vector<std::size_t> stackV{start};
    while (!stackV.empty()) {
      const std::size_t v = stackV.back();
      bool advanced = false;
      while (cursor[v] < adj[v].size()) {
        const Arc arc = adj[v][cursor[v]++];
        if (used[arc.edge]) continue;
        used[arc.edge] = true;
        stackV.push_back(arc.to);
        stackArc.push_back({v, arc.edge});
        advanced = true;
        break;
      }
      if (!advanced) {
        stackV.pop_back();
        if (!stackArc.empty() && !stackV.empty()) {
          circuit.push_back(stackArc.back());
          stackArc.pop_back();
        }
      }
    }
    std::reverse(circuit.begin(), circuit.end());

    // Split the circuit at virtual edges into real-edge trails.  The
    // circuit is cyclic: when it starts mid-trail (its first and last arcs
    // are both real and at least one virtual edge exists), the last and
    // first segments are the same trail and must be re-joined.
    std::vector<Stack> segments;
    Stack current;
    bool sawVirtual = false;
    auto flush = [&] {
      segments.push_back(std::move(current));
      current = Stack{};
    };
    for (const auto& [from, edgeId] : circuit) {
      if (edgeId >= nReal) {
        sawVirtual = true;
        flush();
        continue;
      }
      const auto& e = g.edges[edgeId];
      current.elements.push_back(StackElement{edgeId, e.a != from});
    }
    flush();
    if (sawVirtual && segments.size() >= 2 && !segments.front().elements.empty() &&
        !segments.back().elements.empty()) {
      // Wrap-around: append the leading segment to the trailing one.
      for (const auto& el : segments.front().elements)
        segments.back().elements.push_back(el);
      segments.front().elements.clear();
    }
    for (auto& seg : segments)
      if (!seg.elements.empty()) result.stacks.push_back(std::move(seg));
  }
  return result;
}

namespace {

/// Canonical signature of a stacking for dedup: sorted trails, each trail
/// direction-normalized by device-name sequence.
std::string signature(const DiffusionGraph& g, const Stacking& s) {
  std::vector<std::string> trails;
  for (const Stack& st : s.stacks) {
    std::string fwd, rev;
    for (const auto& el : st.elements) fwd += g.edges[el.edge].device + ",";
    for (auto it = st.elements.rbegin(); it != st.elements.rend(); ++it)
      rev += g.edges[it->edge].device + ",";
    trails.push_back(std::min(fwd, rev));
  }
  std::sort(trails.begin(), trails.end());
  std::string sig;
  for (const auto& t : trails) sig += t + "|";
  return sig;
}

struct Enumerator {
  const DiffusionGraph& g;
  std::size_t target;
  std::size_t maxResults;
  std::vector<bool> used;
  Stacking current;
  std::vector<Stacking> results;
  std::set<std::string> seen;
  std::size_t nodesVisited = 0;
  static constexpr std::size_t kNodeBudget = 400000;

  explicit Enumerator(const DiffusionGraph& graph, std::size_t tgt, std::size_t maxRes)
      : g(graph), target(tgt), maxResults(maxRes), used(graph.edges.size(), false) {}

  std::size_t remainingLowerBound() const {
    // Euler bound on the subgraph of unused edges.
    std::vector<std::size_t> degree(g.nets.size(), 0);
    Dsu dsu(g.nets.size());
    bool any = false;
    std::vector<bool> touched(g.nets.size(), false);
    for (std::size_t i = 0; i < g.edges.size(); ++i) {
      if (used[i]) continue;
      any = true;
      ++degree[g.edges[i].a];
      ++degree[g.edges[i].b];
      dsu.merge(g.edges[i].a, g.edges[i].b);
      touched[g.edges[i].a] = touched[g.edges[i].b] = true;
    }
    if (!any) return 0;
    std::map<std::size_t, std::size_t> odd;
    std::set<std::size_t> comps;
    for (std::size_t v = 0; v < g.nets.size(); ++v) {
      if (!touched[v]) continue;
      comps.insert(dsu.find(v));
      if (degree[v] % 2 == 1) ++odd[dsu.find(v)];
    }
    std::size_t bound = 0;
    for (std::size_t c : comps) bound += std::max<std::size_t>(1, (odd.count(c) ? odd[c] : 0) / 2);
    return bound;
  }

  bool allUsed() const {
    for (bool u : used)
      if (!u) return false;
    return true;
  }

  void record() {
    const std::string sig = signature(g, current);
    if (seen.insert(sig).second) results.push_back(current);
  }

  /// Extend the open trail ending at vertex v, or close it and start anew.
  void extend(std::size_t v) {
    if (++nodesVisited > kNodeBudget || results.size() >= maxResults) return;
    bool extended = false;
    for (std::size_t i = 0; i < g.edges.size(); ++i) {
      if (used[i]) continue;
      const auto& e = g.edges[i];
      if (e.a != v && e.b != v) continue;
      extended = true;
      used[i] = true;
      current.stacks.back().elements.push_back({i, e.a != v});
      extend(e.a == v ? e.b : e.a);
      current.stacks.back().elements.pop_back();
      used[i] = false;
      if (results.size() >= maxResults) return;
    }
    // Option: close the trail here.
    if (allUsed()) {
      record();
      return;
    }
    if (current.stacks.size() < target) {
      // Prune: can the rest still be covered within budget?
      if (current.stacks.size() + remainingLowerBound() > target) return;
      startNewTrail();
    }
    (void)extended;
  }

  void startNewTrail() {
    if (results.size() >= maxResults) return;
    // Start from an odd-degree vertex of the remaining graph when one
    // exists (necessary for optimality), else any vertex with edges.
    std::vector<std::size_t> degree(g.nets.size(), 0);
    for (std::size_t i = 0; i < g.edges.size(); ++i) {
      if (used[i]) continue;
      ++degree[g.edges[i].a];
      ++degree[g.edges[i].b];
    }
    std::vector<std::size_t> starts;
    for (std::size_t v = 0; v < g.nets.size(); ++v)
      if (degree[v] % 2 == 1) starts.push_back(v);
    if (starts.empty())
      for (std::size_t v = 0; v < g.nets.size(); ++v)
        if (degree[v] > 0) starts.push_back(v);
    // Deduplicate work: starting vertices are tried once each.
    for (std::size_t v : starts) {
      current.stacks.emplace_back();
      extend(v);
      current.stacks.pop_back();
      if (results.size() >= maxResults) return;
      if (!starts.empty() && degree[starts.front()] % 2 == 1) {
        // With odd vertices present, any optimal trail must start at one;
        // trying a single odd start suffices for completeness of *optimal*
        // solutions up to trail reordering, but trying all odd starts finds
        // more distinct stackings.  Continue the loop.
      }
    }
  }
};

}  // namespace

std::vector<Stacking> enumerateOptimalStackings(const DiffusionGraph& g,
                                                std::size_t maxResults) {
  std::vector<Stacking> out;
  if (g.edges.empty()) return out;
  if (g.edges.size() > 14)
    throw std::invalid_argument(
        "enumerateOptimalStackings: group too large for exact enumeration (use "
        "greedyStacking)");
  Enumerator en(g, g.minimumStacks(), maxResults);
  en.startNewTrail();
  return en.results;
}

}  // namespace amsyn::layout
