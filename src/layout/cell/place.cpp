#include "layout/cell/place.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <stdexcept>

#include "core/metrics.hpp"
#include "core/trace.hpp"

namespace amsyn::layout {

using geom::CellInstance;
using geom::CellMaster;
using geom::Coord;
using geom::Orientation;
using geom::Rect;
using geom::Transform;

double estimateWirelengthWeighted(const std::vector<CellInstance>& instances,
                                  const std::map<std::string, double>& netWeights) {
  std::map<std::string, Rect> netBox;
  for (const auto& inst : instances) {
    for (const auto& pin : inst.transformedPins()) {
      if (pin.name.empty()) continue;
      auto [it, inserted] = netBox.try_emplace(pin.name, pin.rect);
      if (!inserted) it->second = it->second.unionWith(pin.rect);
    }
  }
  double total = 0.0;
  for (const auto& [net, box] : netBox) {
    double w = 1.0;
    if (auto it = netWeights.find(net); it != netWeights.end()) w = it->second;
    total += w * static_cast<double>(box.halfPerimeter());
  }
  return total;
}

double estimateWirelength(const std::vector<CellInstance>& instances) {
  return estimateWirelengthWeighted(instances, {});
}

bool hasOverlaps(const std::vector<CellInstance>& instances, Coord spacing) {
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const Rect a = instances[i].boundingBox().inflated(spacing / 2);
    for (std::size_t j = i + 1; j < instances.size(); ++j) {
      if (a.overlaps(instances[j].boundingBox().inflated(spacing / 2))) return true;
    }
  }
  return false;
}

namespace {

double overlapArea(const std::vector<CellInstance>& instances, Coord spacing) {
  double total = 0.0;
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const Rect a = instances[i].boundingBox().inflated(spacing / 2);
    for (std::size_t j = i + 1; j < instances.size(); ++j) {
      const Rect o = a.intersect(instances[j].boundingBox().inflated(spacing / 2));
      total += static_cast<double>(o.area());
    }
  }
  return total;
}

/// The mirrored counterpart of an orientation about a vertical axis.
Orientation mirrored(Orientation o) {
  switch (o) {
    case Orientation::R0: return Orientation::MX;
    case Orientation::MX: return Orientation::R0;
    case Orientation::R180: return Orientation::MY;
    case Orientation::MY: return Orientation::R180;
    case Orientation::R90: return Orientation::MX90;
    case Orientation::MX90: return Orientation::R90;
    case Orientation::R270: return Orientation::MY90;
    case Orientation::MY90: return Orientation::R270;
  }
  return Orientation::MX;
}

struct PlacerState {
  const std::vector<PlacementComponent>* components;
  PlacerOptions opts;
  std::vector<std::size_t> variant;
  std::vector<Transform> xform;
  std::vector<std::ptrdiff_t> peer;  // index of symmetry partner or -1

  std::vector<CellInstance> instances() const {
    std::vector<CellInstance> out;
    out.reserve(components->size());
    for (std::size_t i = 0; i < components->size(); ++i) {
      out.push_back(CellInstance{(*components)[i].name,
                                 &(*components)[i].variants[variant[i]], xform[i]});
    }
    return out;
  }

  double symmetryError(const std::vector<CellInstance>& inst) const {
    // Axis: average pair midline; error: deviation from common axis +
    // vertical misalignment + orientation mismatch.
    double axisSum = 0.0;
    std::size_t pairs = 0;
    for (std::size_t i = 0; i < peer.size(); ++i) {
      if (peer[i] < 0 || static_cast<std::size_t>(peer[i]) < i) continue;
      const auto ca = inst[i].boundingBox().center();
      const auto cb = inst[static_cast<std::size_t>(peer[i])].boundingBox().center();
      axisSum += 0.5 * static_cast<double>(ca.x + cb.x);
      ++pairs;
    }
    if (pairs == 0) return 0.0;
    const double axis = axisSum / static_cast<double>(pairs);
    double err = 0.0;
    for (std::size_t i = 0; i < peer.size(); ++i) {
      if (peer[i] < 0 || static_cast<std::size_t>(peer[i]) < i) continue;
      const std::size_t j = static_cast<std::size_t>(peer[i]);
      const auto ca = inst[i].boundingBox().center();
      const auto cb = inst[j].boundingBox().center();
      err += std::abs(static_cast<double>(ca.x + cb.x) / 2.0 - axis);
      err += std::abs(static_cast<double>(ca.y - cb.y));
      if (xform[j].orient != mirrored(xform[i].orient)) err += 50.0;
    }
    return err;
  }

  double cost(double overlapScale) const {
    const auto inst = instances();
    Rect bb;
    for (const auto& c : inst) bb = bb.unionWith(c.boundingBox());
    const double area = static_cast<double>(bb.area());
    const double wl = estimateWirelengthWeighted(inst, opts.netWeights);
    const double ov = overlapArea(inst, opts.spacing);
    const double sym = symmetryError(inst);
    return opts.areaWeight * area + opts.wireWeight * wl * 10.0 +
           opts.overlapWeight * overlapScale * ov + opts.symmetryWeight * sym * 20.0;
  }
};

Coord snap(Coord v, Coord grid) { return (v / grid) * grid; }

}  // namespace

Placement rowPlacement(const std::vector<PlacementComponent>& components,
                       const PlacerOptions& opts) {
  // Order: symmetric pairs adjacent, then the rest in declaration order.
  std::vector<std::size_t> order;
  std::set<std::size_t> done;
  for (std::size_t i = 0; i < components.size(); ++i) {
    if (done.count(i)) continue;
    order.push_back(i);
    done.insert(i);
    if (components[i].symmetryPeer) {
      for (std::size_t j = 0; j < components.size(); ++j)
        if (!done.count(j) && components[j].name == *components[i].symmetryPeer) {
          order.push_back(j);
          done.insert(j);
        }
    }
  }

  Placement result;
  Coord x = 0;
  std::vector<CellInstance> inst;
  for (std::size_t idx : order) {
    const auto& master = components[idx].variants.front();
    const Rect bb = master.boundingBox();
    Transform t;
    t.orient = Orientation::R0;
    t.dx = x - bb.x0;
    t.dy = -bb.y0;
    inst.push_back(CellInstance{components[idx].name, &master, t});
    result.variantChosen[components[idx].name] = 0;
    x += bb.width() + opts.spacing;
  }
  // Restore declaration order in the result for stable consumption.
  std::vector<CellInstance> ordered(components.size());
  for (std::size_t k = 0; k < order.size(); ++k) ordered[order[k]] = inst[k];
  result.instances = std::move(ordered);

  Rect bb;
  for (const auto& c : result.instances) bb = bb.unionWith(c.boundingBox());
  result.boundingBox = bb;
  result.wirelength = estimateWirelength(result.instances);
  result.overlapFree = !hasOverlaps(result.instances, opts.spacing);
  return result;
}

Placement compactPlacement(
    const Placement& placement, Coord spacing,
    const std::vector<std::pair<std::string, std::string>>& symmetricPairs) {
  Placement out = placement;
  auto& inst = out.instances;

  // Group index per instance: symmetric pairs share a group.
  std::vector<std::size_t> group(inst.size());
  std::iota(group.begin(), group.end(), std::size_t{0});
  for (const auto& [a, b] : symmetricPairs) {
    std::size_t ia = inst.size(), ib = inst.size();
    for (std::size_t i = 0; i < inst.size(); ++i) {
      if (inst[i].name == a) ia = i;
      if (inst[i].name == b) ib = i;
    }
    if (ia < inst.size() && ib < inst.size()) group[ib] = group[ia];
  }

  // Process in x order; each instance computes the furthest-left legal x,
  // and a group moves by the min displacement among its members.
  std::vector<std::size_t> order(inst.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return inst[a].boundingBox().x0 < inst[b].boundingBox().x0;
  });

  Coord baseline = std::numeric_limits<Coord>::max();
  for (const auto& c : inst) baseline = std::min(baseline, c.boundingBox().x0);

  std::vector<bool> done(inst.size(), false);
  for (std::size_t oi = 0; oi < order.size(); ++oi) {
    const std::size_t i = order[oi];
    if (done[i]) continue;
    // Members of i's group (in x order they may appear later; move jointly).
    std::vector<std::size_t> members;
    for (std::size_t j = 0; j < inst.size(); ++j)
      if (group[j] == group[i]) members.push_back(j);

    Coord shift = std::numeric_limits<Coord>::max();
    for (std::size_t m : members) {
      const Rect rm = inst[m].boundingBox();
      Coord limit = baseline;  // furthest left this member may reach
      for (std::size_t j = 0; j < inst.size(); ++j) {
        if (done[j] == false || group[j] == group[i]) continue;
        const Rect rj = inst[j].boundingBox();
        const bool yOverlap = rj.y0 < rm.y1 + spacing && rm.y0 < rj.y1 + spacing;
        if (yOverlap) limit = std::max(limit, rj.x1 + spacing);
      }
      shift = std::min(shift, rm.x0 - limit);
    }
    if (shift == std::numeric_limits<Coord>::max()) shift = 0;
    shift = std::max<Coord>(shift, 0);
    for (std::size_t m : members) {
      inst[m].placement.dx -= shift;
      done[m] = true;
    }
  }

  Rect bb;
  for (const auto& c : inst) bb = bb.unionWith(c.boundingBox());
  out.boundingBox = bb;
  out.wirelength = estimateWirelength(inst);
  out.overlapFree = !hasOverlaps(inst, spacing);
  return out;
}

Placement placeCells(const std::vector<PlacementComponent>& components,
                     const PlacerOptions& opts) {
  AMSYN_SPAN("placement");
  if (components.empty()) throw std::invalid_argument("placeCells: nothing to place");
  for (const auto& c : components)
    if (c.variants.empty())
      throw std::invalid_argument("placeCells: component " + c.name + " has no variants");

  PlacerState st;
  st.components = &components;
  st.opts = opts;
  st.variant.assign(components.size(), 0);
  st.peer.assign(components.size(), -1);
  for (std::size_t i = 0; i < components.size(); ++i) {
    if (!components[i].symmetryPeer) continue;
    for (std::size_t j = 0; j < components.size(); ++j)
      if (components[j].name == *components[i].symmetryPeer) st.peer[i] = j;
  }

  // Start from the deterministic row placement (legal, finite cost).
  const Placement seed = rowPlacement(components, opts);
  st.xform.resize(components.size());
  for (std::size_t i = 0; i < components.size(); ++i)
    st.xform[i] = seed.instances[i].placement;

  double overlapScale = 1.0;
  PlacerState prev = st;
  PlacerState best = st;
  double spread = 1.0;  // move range multiplier, shrinks over time
  std::size_t movesDone = 0;

  num::AnnealProblem prob;
  prob.cost = [&] { return st.cost(overlapScale); };
  prob.propose = [&](num::Rng& rng) {
    prev.variant = st.variant;
    prev.xform = st.xform;
    const std::size_t i = rng.index(components.size());
    const int kind = rng.integer(0, 7);
    const Coord range = std::max<Coord>(
        opts.gridStep, static_cast<Coord>(static_cast<double>(seed.boundingBox.width()) *
                                          0.25 * spread));
    switch (kind) {
      case 0:
      case 1: {  // translate (most common)
        st.xform[i].dx = snap(st.xform[i].dx + static_cast<Coord>(rng.integer(
                                                   -static_cast<int>(range),
                                                   static_cast<int>(range))),
                              opts.gridStep);
        st.xform[i].dy = snap(st.xform[i].dy + static_cast<Coord>(rng.integer(
                                                   -static_cast<int>(range),
                                                   static_cast<int>(range))),
                              opts.gridStep);
        break;
      }
      case 2: {  // reorient
        st.xform[i].orient = geom::kAllOrientations[rng.index(8)];
        break;
      }
      case 3: {  // swap positions with another component
        const std::size_t j = rng.index(components.size());
        std::swap(st.xform[i].dx, st.xform[j].dx);
        std::swap(st.xform[i].dy, st.xform[j].dy);
        break;
      }
      case 4: {  // refold: switch variant
        st.variant[i] = rng.index(components[i].variants.size());
        break;
      }
      case 6:
      case 7: {  // abut: snap component i to a random side of component j
        if (components.size() < 2) break;
        std::size_t j = rng.index(components.size());
        while (j == i) j = rng.index(components.size());
        const CellInstance a{components[i].name, &components[i].variants[st.variant[i]],
                             st.xform[i]};
        const CellInstance b{components[j].name, &components[j].variants[st.variant[j]],
                             st.xform[j]};
        const Rect ra = a.boundingBox();
        const Rect rb = b.boundingBox();
        Coord dx = 0, dy = 0;
        switch (rng.integer(0, 3)) {
          case 0:  // right of j
            dx = rb.x1 + opts.spacing - ra.x0;
            dy = rb.y0 - ra.y0;
            break;
          case 1:  // left of j
            dx = rb.x0 - opts.spacing - ra.x1;
            dy = rb.y0 - ra.y0;
            break;
          case 2:  // above j
            dx = rb.x0 - ra.x0;
            dy = rb.y1 + opts.spacing - ra.y0;
            break;
          default:  // below j
            dx = rb.x0 - ra.x0;
            dy = rb.y0 - opts.spacing - ra.y1;
            break;
        }
        st.xform[i].dx = snap(st.xform[i].dx + dx, opts.gridStep);
        st.xform[i].dy = snap(st.xform[i].dy + dy, opts.gridStep);
        break;
      }
      case 5: {  // symmetry snap: mirror the peer into place
        if (st.peer[i] >= 0) {
          const std::size_t j = static_cast<std::size_t>(st.peer[i]);
          CellInstance a{components[i].name, &components[i].variants[st.variant[i]],
                         st.xform[i]};
          const Rect abb = a.boundingBox();
          // Mirror about the current overall bbox center.
          Rect bb;
          for (const auto& inst : st.instances()) bb = bb.unionWith(inst.boundingBox());
          const Coord axis = bb.center().x;
          const Rect target = geom::mirrorX(abb, axis);
          st.variant[j] = st.variant[i];
          st.xform[j].orient = mirrored(st.xform[i].orient);
          // Position the peer so its bbox lands on the mirrored rect.
          CellInstance b{components[j].name, &components[j].variants[st.variant[j]],
                         Transform{st.xform[j].orient, 0, 0}};
          const Rect bbb = b.boundingBox();
          st.xform[j].dx = target.x0 - bbb.x0;
          st.xform[j].dy = target.y0 - bbb.y0;
        }
        break;
      }
      default:
        break;
    }
    if (++movesDone % 256 == 0) {
      spread = std::max(0.05, spread * 0.92);
      overlapScale = std::min(64.0, overlapScale * 1.15);
    }
  };
  prob.undo = [&] {
    st.variant = prev.variant;
    st.xform = prev.xform;
  };
  prob.snapshot = [&] { best = st; };

  num::AnnealOptions aopts = opts.anneal;
  aopts.seed = opts.seed;
  aopts.problemSizeHint = std::max<std::size_t>(components.size(), 8);
  const auto stats = num::anneal(prob, aopts);
  // KOAN-style placement traffic, distinct from the sizing anneals that
  // share the generic anneal.* counters.
  static const auto cMoves =
      core::metrics::registry().counter("place.moves_attempted");
  static const auto cAccepts =
      core::metrics::registry().counter("place.moves_accepted");
  core::metrics::add(cMoves, stats.movesAttempted);
  core::metrics::add(cAccepts, stats.movesAccepted);

  // Legalize the best solution if overlaps survived: push instances apart
  // along x in left-to-right order.
  auto inst = best.instances();
  std::vector<std::size_t> order(inst.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return inst[a].boundingBox().x0 < inst[b].boundingBox().x0;
  });
  bool moved = true;
  std::size_t guard = 0;
  while (moved && guard++ < 64) {
    moved = false;
    for (std::size_t oi = 0; oi < order.size(); ++oi) {
      for (std::size_t oj = oi + 1; oj < order.size(); ++oj) {
        const std::size_t i = order[oi], j = order[oj];
        const Rect a = inst[i].boundingBox().inflated(opts.spacing / 2);
        const Rect b = inst[j].boundingBox().inflated(opts.spacing / 2);
        if (!a.overlaps(b)) continue;
        const Coord push = a.x1 - b.x0 + opts.gridStep;
        best.xform[j].dx += push;
        inst[j].placement.dx += push;
        moved = true;
      }
    }
  }

  Placement result;
  result.instances = best.instances();
  for (std::size_t i = 0; i < components.size(); ++i)
    result.variantChosen[components[i].name] = best.variant[i];
  Rect bb;
  for (const auto& c : result.instances) bb = bb.unionWith(c.boundingBox());
  result.boundingBox = bb;
  result.wirelength = estimateWirelength(result.instances);
  result.overlapFree = !hasOverlaps(result.instances, opts.spacing);
  result.symmetryError = best.symmetryError(result.instances);
  result.stats = stats;

  // Best-of guarantee: post-legalization inflation can leave the annealed
  // result worse than the trivial row; never return worse than the seed.
  auto score = [&](const Placement& p) {
    return opts.areaWeight * static_cast<double>(p.boundingBox.area()) +
           opts.wireWeight * p.wirelength * 10.0 +
           (p.overlapFree ? 0.0 : 1e18);
  };
  if (score(seed) < score(result)) {
    Placement fallback = seed;
    fallback.stats = stats;
    return fallback;
  }
  return result;
}

}  // namespace amsyn::layout
