// ANAGRAM II-style analog area routing (Cohn et al. [34-36]): a maze router
// on a uniform 3-layer grid (poly / metal1 / metal2) supporting
//  * wire compatibility classes with crosstalk-avoidance costs (noisy wires
//    pay to run next to sensitive ones),
//  * symmetric differential routing (a net's path is mirrored for its peer),
//  * over-the-device routing on metal2 at a penalty,
//  * rip-up-and-retry across passes, and
//  * ROAD/ANAGRAM-III-style parasitic bounds [39,40]: nets with a
//    capacitance budget pay a length cost proportional to their sensitivity
//    and report bound violations.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "circuit/process.hpp"
#include "geom/layout.hpp"

namespace amsyn::layout {

enum class WireClass : std::uint8_t { Quiet, Noisy, Sensitive };

/// Are two wire classes incompatible (must avoid adjacency)?
constexpr bool incompatible(WireClass a, WireClass b) {
  return (a == WireClass::Noisy && b == WireClass::Sensitive) ||
         (a == WireClass::Sensitive && b == WireClass::Noisy);
}

struct RouteNet {
  std::string name;
  WireClass wireClass = WireClass::Quiet;
  /// ROAD-mode parasitic budget: max ground capacitance (F); 0 = unbounded.
  double capBound = 0.0;
  /// Mirror this net's routing from its peer (differential pair wiring).
  std::optional<std::string> symmetricPeer;
};

struct RouterOptions {
  geom::Coord pitch = 24;        ///< routing grid pitch (6 lambda)
  geom::Coord wireWidth = 12;    ///< drawn wire width (3 lambda)
  geom::Coord margin = 72;       ///< routing halo around the placement
  int viaCost = 4;
  int overDevicePenalty = 3;     ///< metal2 above device area
  int crosstalkPenalty = 12;     ///< stepping adjacent to an incompatible wire
  int polyPenalty = 6;           ///< poly is resistive: discourage long runs
  std::size_t maxPasses = 3;     ///< rip-up-and-retry rounds
};

struct NetReport {
  bool routed = false;
  double lengthLambda = 0.0;
  int vias = 0;
  bool symmetricRealized = false;
  double estimatedCap = 0.0;     ///< ground capacitance estimate (F)
  bool capBoundMet = true;
};

struct RouteResult {
  geom::Layout layout;           ///< instances + generated wires/vias
  std::map<std::string, NetReport> nets;
  bool allRouted = false;
  double totalLengthLambda = 0.0;
  /// Crosstalk exposure: grid-adjacent run length (lambda) between
  /// incompatible wire classes (the quantity ANAGRAM II minimizes).
  double crosstalkExposureLambda = 0.0;
};

/// Route the named nets over a placement.  Pins are taken from the placed
/// instances' transformed pins (pin name == net name).  Nets not listed are
/// ignored (e.g. bulk ties handled by abutment).
RouteResult routeCells(const std::vector<geom::CellInstance>& placed,
                       const std::vector<RouteNet>& nets, const circuit::Process& proc,
                       const RouterOptions& opts = {});

}  // namespace amsyn::layout
