// Segregated wiring channels (Kimble et al., CICC 1985 — the paper's ref
// [53]): in a row-based mixed-signal layout, alternate the wiring channels
// between "digital" and "analog" and constrain noisy and sensitive signals
// never to share a channel.  The paper calls this "an early elegant solution
// to the coupling problem ... [that] remains a practical solution when the
// size of the layout is not too large."
#pragma once

#include <map>
#include <string>
#include <vector>

#include "layout/cell/route.hpp"  // WireClass

namespace amsyn::layout {

struct SegregatedNet {
  std::string name;
  WireClass wireClass = WireClass::Quiet;
  /// Channel index the net would ideally use (nearest its row span).
  int preferredChannel = 0;
};

struct SegregatedAssignment {
  /// Net -> assigned channel index.
  std::map<std::string, int> channelOf;
  /// Channel index -> type it was dedicated to this run.
  std::map<int, WireClass> channelType;
  int channelsUsed = 0;
  /// Total |assigned - preferred| detour over all nets.
  int totalDetour = 0;
  bool valid = false;  ///< no noisy/sensitive pair shares a channel
};

struct SegregateOptions {
  int channelCount = 8;
  /// Parity convention: even channels host noisy (digital) wiring, odd
  /// channels host sensitive (analog) wiring.  Quiet nets may use either.
  bool evenChannelsDigital = true;
  int maxLoadPerChannel = 12;  ///< capacity before spilling to the next
};

/// Assign every net to the nearest legal channel.  Returns valid = false
/// only when capacity makes legal assignment impossible.
SegregatedAssignment segregateChannels(const std::vector<SegregatedNet>& nets,
                                       const SegregateOptions& opts = {});

/// Verify the invariant directly: no channel carries both a Noisy and a
/// Sensitive net.
bool segregationHolds(const SegregatedAssignment& assignment,
                      const std::vector<SegregatedNet>& nets);

}  // namespace amsyn::layout
