// Constraint-based analog channel routing (Gyurcsik & Jeen [54]; Choudhury &
// Sangiovanni-Vincentelli [55]): a classic left-edge channel router extended
// with the analog necessities the paper highlights — variable wire widths,
// variable wire-to-wire separations between incompatible signal classes, and
// grounded shield insertion between noisy and sensitive wires.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "layout/cell/route.hpp"  // WireClass

namespace amsyn::layout {

/// One terminal entering the channel from the top or bottom edge at an
/// integer column position.
struct ChannelPin {
  std::string net;
  int column = 0;
  bool top = true;
};

struct ChannelNetSpec {
  std::string name;
  WireClass wireClass = WireClass::Quiet;
  int widthTracks = 1;  ///< analog wires can be wider (power, low-R)
};

struct ChannelOptions {
  /// Extra empty tracks required between incompatible-class wires whose
  /// spans overlap.
  int classSeparationTracks = 1;
  /// Insert a grounded shield track between incompatible neighbors instead
  /// of just spacing them (ref [55]'s shield insertion).
  bool insertShields = false;
};

struct ChannelAssignment {
  std::string net;     ///< "(shield)" for inserted shields
  int track = 0;       ///< first track (tracks count from 0 at the bottom)
  int widthTracks = 1;
  int colMin = 0, colMax = 0;
};

struct ChannelResult {
  bool routable = false;         ///< false when the VCG is cyclic
  std::vector<ChannelAssignment> assignments;
  int height = 0;                ///< total tracks used (incl. shields/gaps)
  int densityLowerBound = 0;     ///< max column density (classic LB)
  /// Adjacent-track overlap length between incompatible classes (columns);
  /// the exposure metric the analog extensions reduce.
  int crosstalkAdjacency = 0;
  std::size_t shieldsInserted = 0;
};

/// Route one channel.  Nets not mentioned in `specs` default to Quiet /
/// 1 track wide.
ChannelResult routeChannel(const std::vector<ChannelPin>& pins,
                           const std::vector<ChannelNetSpec>& specs = {},
                           const ChannelOptions& opts = {});

}  // namespace amsyn::layout
