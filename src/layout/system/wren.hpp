// WREN-style mixed-signal system routing (Mitra, Nag, Rutenbar & Carley,
// ICCAD 1992 [56]): a global router over the chip's channel graph that
// honors SNR-style noise-rejection constraints on sensitive signals, plus
// the constraint mapper that converts a chip-level noise budget into
// per-channel separation/shield directives for the detailed channel router.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "geom/rect.hpp"
#include "layout/cell/route.hpp"      // WireClass
#include "layout/system/floorplan.hpp"

namespace amsyn::layout {

/// Channel graph: junction nodes connected by channel segments.
struct ChannelGraph {
  std::vector<geom::Point> nodes;
  struct Edge {
    std::size_t a = 0, b = 0;
    int capacityTracks = 8;
    double lengthLambda = 0.0;
  };
  std::vector<Edge> edges;

  std::size_t addNode(geom::Point p);
  void addEdge(std::size_t a, std::size_t b, int capacity);
};

/// Derive a simple channel graph from a floorplan: a Hanan-style grid over
/// block boundaries with junctions at the crossings (channels are the
/// spacing corridors the floorplanner reserved).
ChannelGraph channelGraphFromFloorplan(const Floorplan& fp);

struct GlobalNet {
  std::string name;
  WireClass wireClass = WireClass::Quiet;
  std::vector<geom::Point> terminals;  ///< connected to the nearest junction
  /// SNR constraint for sensitive nets: maximum tolerable coupling (a.u.).
  double noiseBudget = 0.0;
};

struct WrenOptions {
  double congestionWeight = 2.0;
  double noiseAvoidWeight = 4.0;  ///< sensitive nets avoid noisy channels
  /// Coupling contribution per lambda of shared channel at minimum
  /// separation (before mapper-assigned mitigation).
  double couplingPerLambda = 0.01;
};

/// Per-channel directive produced by the constraint mapper for the detailed
/// (channel) router.
struct ChannelDirective {
  std::size_t edge = 0;
  int extraSeparationTracks = 0;
  bool shield = false;
};

struct WrenResult {
  std::map<std::string, std::vector<std::size_t>> routeOf;  ///< net -> edge list
  std::map<std::string, bool> routed;
  std::vector<int> usageTracks;         ///< per edge
  bool anyOverflow = false;
  /// Estimated coupling per sensitive net before and after mapping.
  std::map<std::string, double> couplingRaw;
  std::map<std::string, double> couplingMitigated;
  std::map<std::string, bool> snrMet;
  std::vector<ChannelDirective> directives;
};

WrenResult wrenGlobalRoute(const ChannelGraph& graph, const std::vector<GlobalNet>& nets,
                           const WrenOptions& opts = {});

}  // namespace amsyn::layout
