#include "layout/system/segregate.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace amsyn::layout {

namespace {

bool channelAllows(WireClass channel, WireClass net) {
  if (net == WireClass::Quiet) return true;
  return channel == net;
}

}  // namespace

SegregatedAssignment segregateChannels(const std::vector<SegregatedNet>& nets,
                                       const SegregateOptions& opts) {
  if (opts.channelCount < 2)
    throw std::invalid_argument("segregateChannels: need at least 2 channels");
  SegregatedAssignment out;
  std::map<int, int> load;

  for (int c = 0; c < opts.channelCount; ++c) {
    const bool evenIsDigital = opts.evenChannelsDigital;
    const bool digital = (c % 2 == 0) == evenIsDigital;
    out.channelType[c] = digital ? WireClass::Noisy : WireClass::Sensitive;
  }

  // Assign the constrained classes first, then quiet nets into the slack.
  std::vector<const SegregatedNet*> order;
  for (const auto& n : nets)
    if (n.wireClass != WireClass::Quiet) order.push_back(&n);
  for (const auto& n : nets)
    if (n.wireClass == WireClass::Quiet) order.push_back(&n);

  out.valid = true;
  for (const SegregatedNet* n : order) {
    int best = -1, bestCost = std::numeric_limits<int>::max();
    for (int c = 0; c < opts.channelCount; ++c) {
      if (!channelAllows(out.channelType[c], n->wireClass)) continue;
      if (load[c] >= opts.maxLoadPerChannel) continue;
      const int cost = std::abs(c - n->preferredChannel);
      if (cost < bestCost) {
        bestCost = cost;
        best = c;
      }
    }
    if (best < 0) {
      out.valid = false;  // capacity exhausted for this class
      continue;
    }
    out.channelOf[n->name] = best;
    ++load[best];
    out.totalDetour += bestCost;
  }
  for (const auto& [c, l] : load) {
    (void)l;
    out.channelsUsed = std::max(out.channelsUsed, c + 1);
  }
  return out;
}

bool segregationHolds(const SegregatedAssignment& assignment,
                      const std::vector<SegregatedNet>& nets) {
  std::map<int, std::pair<bool, bool>> seen;  // channel -> (noisy, sensitive)
  for (const auto& n : nets) {
    auto it = assignment.channelOf.find(n.name);
    if (it == assignment.channelOf.end()) continue;
    auto& [noisy, sensitive] = seen[it->second];
    if (n.wireClass == WireClass::Noisy) noisy = true;
    if (n.wireClass == WireClass::Sensitive) sensitive = true;
  }
  for (const auto& [c, flags] : seen) {
    (void)c;
    if (flags.first && flags.second) return false;
  }
  return true;
}

}  // namespace amsyn::layout
