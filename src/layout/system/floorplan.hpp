// Mixed-signal block floorplanning (section 3.2).  Two engines:
//  * a slicing-tree floorplanner in the ILAC tradition [33] — normalized
//    Polish-expression annealing with orientation-aware shape combination;
//  * WRIGHT-style substrate-aware floorplanning (Mitra et al. [57]) — a flat
//    KOAN-style annealer whose cost includes a fast substrate-coupling
//    evaluator, so noisy digital blocks are pushed away from sensitive
//    analog blocks while area and wirelength stay in play.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "geom/rect.hpp"
#include "numeric/anneal.hpp"

namespace amsyn::layout {

/// One functional block of the mixed-signal system.
struct Block {
  std::string name;
  geom::Coord width = 0;
  geom::Coord height = 0;
  /// Substrate-noise injection strength (digital switching blocks > 0).
  double noiseInjection = 0.0;
  /// Substrate-noise sensitivity (analog blocks > 0).
  double noiseSensitivity = 0.0;

  bool isDigital() const { return noiseInjection > 0.0; }
  bool isAnalog() const { return noiseSensitivity > 0.0; }
};

/// Block-level connectivity: each net lists the blocks it touches.
struct BlockNet {
  std::string name;
  std::vector<std::string> blocks;
};

struct PlacedBlock {
  std::string name;
  geom::Rect rect;
  bool rotated = false;
};

struct FloorplanOptions {
  double areaWeight = 1.0;
  double wireWeight = 0.3;
  double noiseWeight = 1.0;     ///< substrate-coupling cost multiplier
  geom::Coord spacing = 40;     ///< inter-block clearance / channel width
  double noiseHalfDistance = 400.0;  ///< distance at which coupling halves
  num::AnnealOptions anneal;
  std::uint64_t seed = 1;
};

struct Floorplan {
  std::vector<PlacedBlock> blocks;
  geom::Rect chipBox;
  double wirelength = 0.0;
  double substrateNoise = 0.0;  ///< total sensitivity-weighted coupling
  bool overlapFree = false;

  const PlacedBlock& block(const std::string& name) const;
};

/// Fast substrate-coupling evaluator (the WRIGHT simplification): coupling
/// from digital block d to analog block a falls off as
/// 1 / (1 + (dist / d0)^2); total noise = sum over pairs of
/// injection * sensitivity * coupling.
double substrateNoise(const std::vector<Block>& blocks,
                      const std::vector<PlacedBlock>& placed, double halfDistance);

/// Slicing floorplan: anneal over normalized Polish expressions; block
/// orientations chosen by shape combination.  Always overlap-free by
/// construction.
Floorplan slicingFloorplan(const std::vector<Block>& blocks,
                           const std::vector<BlockNet>& nets,
                           const FloorplanOptions& opts = {});

/// WRIGHT: flat annealing placement with the substrate-noise term.
Floorplan wrightFloorplan(const std::vector<Block>& blocks,
                          const std::vector<BlockNet>& nets,
                          const FloorplanOptions& opts = {});

/// Half-perimeter wirelength over block centers.
double blockWirelength(const std::vector<BlockNet>& nets,
                       const std::vector<PlacedBlock>& placed);

}  // namespace amsyn::layout
