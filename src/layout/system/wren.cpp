#include "layout/system/wren.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <set>
#include <stdexcept>

namespace amsyn::layout {

using geom::Coord;
using geom::Point;
using geom::Rect;

std::size_t ChannelGraph::addNode(Point p) {
  nodes.push_back(p);
  return nodes.size() - 1;
}

void ChannelGraph::addEdge(std::size_t a, std::size_t b, int capacity) {
  Edge e;
  e.a = a;
  e.b = b;
  e.capacityTracks = capacity;
  e.lengthLambda = static_cast<double>(std::abs(nodes[a].x - nodes[b].x) +
                                       std::abs(nodes[a].y - nodes[b].y)) /
                   4.0;
  edges.push_back(e);
}

ChannelGraph channelGraphFromFloorplan(const Floorplan& fp) {
  ChannelGraph g;
  std::set<Coord> xs{fp.chipBox.x0, fp.chipBox.x1};
  std::set<Coord> ys{fp.chipBox.y0, fp.chipBox.y1};
  for (const auto& b : fp.blocks) {
    xs.insert(b.rect.x0);
    xs.insert(b.rect.x1);
    ys.insert(b.rect.y0);
    ys.insert(b.rect.y1);
  }
  const std::vector<Coord> xv(xs.begin(), xs.end());
  const std::vector<Coord> yv(ys.begin(), ys.end());

  auto insideBlock = [&](Point p) {
    for (const auto& b : fp.blocks)
      if (b.rect.contains(p) && !b.rect.inflated(-1).empty() &&
          b.rect.inflated(-1).contains(p))
        return true;
    return false;
  };

  // Junctions at Hanan crossings outside blocks.
  std::map<std::pair<std::size_t, std::size_t>, std::size_t> nodeAt;
  for (std::size_t i = 0; i < xv.size(); ++i)
    for (std::size_t j = 0; j < yv.size(); ++j) {
      const Point p{xv[i], yv[j]};
      if (!insideBlock(p)) nodeAt[{i, j}] = g.addNode(p);
    }

  auto segmentClear = [&](Point a, Point b) {
    // Check a few interior sample points.
    for (int s = 1; s <= 3; ++s) {
      const Point m{a.x + (b.x - a.x) * s / 4, a.y + (b.y - a.y) * s / 4};
      if (insideBlock(m)) return false;
    }
    return true;
  };

  for (const auto& [key, id] : nodeAt) {
    const auto [i, j] = key;
    if (auto it = nodeAt.find({i + 1, j}); it != nodeAt.end()) {
      if (segmentClear(g.nodes[id], g.nodes[it->second]))
        g.addEdge(id, it->second, 8);
    }
    if (auto it = nodeAt.find({i, j + 1}); it != nodeAt.end()) {
      if (segmentClear(g.nodes[id], g.nodes[it->second]))
        g.addEdge(id, it->second, 8);
    }
  }
  return g;
}

WrenResult wrenGlobalRoute(const ChannelGraph& graph, const std::vector<GlobalNet>& nets,
                           const WrenOptions& opts) {
  WrenResult result;
  const std::size_t nNodes = graph.nodes.size();
  const std::size_t nEdges = graph.edges.size();
  if (nNodes == 0) throw std::invalid_argument("wrenGlobalRoute: empty channel graph");

  result.usageTracks.assign(nEdges, 0);
  std::vector<std::set<std::string>> noisyOn(nEdges);

  // Adjacency.
  std::vector<std::vector<std::size_t>> incident(nNodes);
  for (std::size_t e = 0; e < nEdges; ++e) {
    incident[graph.edges[e].a].push_back(e);
    incident[graph.edges[e].b].push_back(e);
  }

  auto nearestNode = [&](Point p) {
    std::size_t best = 0;
    Coord bestD = std::numeric_limits<Coord>::max();
    for (std::size_t i = 0; i < nNodes; ++i) {
      const Coord d = std::abs(graph.nodes[i].x - p.x) + std::abs(graph.nodes[i].y - p.y);
      if (d < bestD) {
        bestD = d;
        best = i;
      }
    }
    return best;
  };

  auto routeOne = [&](const GlobalNet& net) -> std::optional<std::vector<std::size_t>> {
    if (net.terminals.size() < 2) return std::vector<std::size_t>{};
    std::set<std::size_t> component{nearestNode(net.terminals[0])};
    std::vector<std::size_t> usedEdges;

    for (std::size_t t = 1; t < net.terminals.size(); ++t) {
      const std::size_t goal = nearestNode(net.terminals[t]);
      if (component.count(goal)) continue;
      // Dijkstra from component to goal.
      std::vector<double> dist(nNodes, std::numeric_limits<double>::infinity());
      std::vector<std::size_t> parentEdge(nNodes, SIZE_MAX);
      using QE = std::pair<double, std::size_t>;
      std::priority_queue<QE, std::vector<QE>, std::greater<>> pq;
      for (std::size_t s : component) {
        dist[s] = 0;
        pq.push({0, s});
      }
      while (!pq.empty()) {
        const auto [d, v] = pq.top();
        pq.pop();
        if (d > dist[v]) continue;
        if (v == goal) break;
        for (std::size_t e : incident[v]) {
          const auto& edge = graph.edges[e];
          const std::size_t u = edge.a == v ? edge.b : edge.a;
          double cost = edge.lengthLambda;
          cost *= 1.0 + opts.congestionWeight * static_cast<double>(result.usageTracks[e]) /
                            std::max(1, edge.capacityTracks);
          if (net.wireClass == WireClass::Sensitive && !noisyOn[e].empty())
            cost += opts.noiseAvoidWeight * edge.lengthLambda *
                    static_cast<double>(noisyOn[e].size());
          if (net.wireClass == WireClass::Noisy) {
            // Noisy nets symmetric avoidance of channels sensitive nets
            // already use is handled by routing order (noisy first).
          }
          if (dist[v] + cost < dist[u]) {
            dist[u] = dist[v] + cost;
            parentEdge[u] = e;
            pq.push({dist[u], u});
          }
        }
      }
      if (!std::isfinite(dist[goal])) return std::nullopt;
      // Trace back to the component.
      std::size_t cur = goal;
      while (!component.count(cur)) {
        const std::size_t e = parentEdge[cur];
        usedEdges.push_back(e);
        component.insert(cur);
        cur = graph.edges[e].a == cur ? graph.edges[e].b : graph.edges[e].a;
      }
    }
    return usedEdges;
  };

  // Order: noisy and quiet first so sensitive nets can avoid them.
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < nets.size(); ++i)
    if (nets[i].wireClass != WireClass::Sensitive) order.push_back(i);
  for (std::size_t i = 0; i < nets.size(); ++i)
    if (nets[i].wireClass == WireClass::Sensitive) order.push_back(i);

  for (std::size_t idx : order) {
    const GlobalNet& net = nets[idx];
    const auto path = routeOne(net);
    result.routed[net.name] = path.has_value();
    if (!path) continue;
    result.routeOf[net.name] = *path;
    for (std::size_t e : *path) {
      ++result.usageTracks[e];
      if (net.wireClass == WireClass::Noisy) noisyOn[e].insert(net.name);
      if (result.usageTracks[e] > graph.edges[e].capacityTracks) result.anyOverflow = true;
    }
  }

  // --- constraint mapper: chip-level SNR budget -> per-channel directives ---
  std::vector<int> extraSep(nEdges, 0);
  std::vector<bool> shield(nEdges, false);

  auto couplingOf = [&](const GlobalNet& net, bool mitigated) {
    double total = 0.0;
    auto it = result.routeOf.find(net.name);
    if (it == result.routeOf.end()) return total;
    for (std::size_t e : it->second) {
      if (noisyOn[e].empty()) continue;
      double c = opts.couplingPerLambda * graph.edges[e].lengthLambda *
                 static_cast<double>(noisyOn[e].size());
      if (mitigated) {
        if (shield[e]) c *= 0.05;  // grounded shield: ~26 dB better
        else c /= (1.0 + extraSep[e]);
      }
      total += c;
    }
    return total;
  };

  for (const auto& net : nets) {
    if (net.wireClass != WireClass::Sensitive) continue;
    result.couplingRaw[net.name] = couplingOf(net, false);
    if (net.noiseBudget <= 0.0) {
      result.couplingMitigated[net.name] = result.couplingRaw[net.name];
      result.snrMet[net.name] = true;
      continue;
    }
    // Iteratively harden the worst shared channel until the budget holds.
    for (std::size_t iter = 0; iter < 4 * graph.edges.size() + 8; ++iter) {
      if (couplingOf(net, true) <= net.noiseBudget) break;
      // Worst edge: largest mitigated contribution.
      double worstC = 0.0;
      std::size_t worstE = SIZE_MAX;
      for (std::size_t e : result.routeOf[net.name]) {
        if (noisyOn[e].empty() || shield[e]) continue;
        const double c = opts.couplingPerLambda * graph.edges[e].lengthLambda *
                         static_cast<double>(noisyOn[e].size()) / (1.0 + extraSep[e]);
        if (c > worstC) {
          worstC = c;
          worstE = e;
        }
      }
      if (worstE == SIZE_MAX) break;  // everything already shielded
      if (extraSep[worstE] >= 3) shield[worstE] = true;
      else ++extraSep[worstE];
    }
    result.couplingMitigated[net.name] = couplingOf(net, true);
    result.snrMet[net.name] = result.couplingMitigated[net.name] <= net.noiseBudget;
  }

  for (std::size_t e = 0; e < nEdges; ++e)
    if (extraSep[e] > 0 || shield[e])
      result.directives.push_back(ChannelDirective{e, extraSep[e], shield[e]});

  return result;
}

}  // namespace amsyn::layout
