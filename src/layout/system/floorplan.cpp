#include "layout/system/floorplan.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <numeric>
#include <stdexcept>

namespace amsyn::layout {

using geom::Coord;
using geom::Rect;

const PlacedBlock& Floorplan::block(const std::string& name) const {
  for (const auto& b : blocks)
    if (b.name == name) return b;
  throw std::out_of_range("Floorplan: no block named " + name);
}

double blockWirelength(const std::vector<BlockNet>& nets,
                       const std::vector<PlacedBlock>& placed) {
  std::map<std::string, geom::Point> center;
  for (const auto& b : placed) center[b.name] = b.rect.center();
  double total = 0.0;
  for (const auto& net : nets) {
    bool first = true;
    Coord x0 = 0, x1 = 0, y0 = 0, y1 = 0;
    for (const auto& bn : net.blocks) {
      auto it = center.find(bn);
      if (it == center.end()) continue;
      if (first) {
        x0 = x1 = it->second.x;
        y0 = y1 = it->second.y;
        first = false;
      } else {
        x0 = std::min(x0, it->second.x);
        x1 = std::max(x1, it->second.x);
        y0 = std::min(y0, it->second.y);
        y1 = std::max(y1, it->second.y);
      }
    }
    if (!first) total += static_cast<double>((x1 - x0) + (y1 - y0));
  }
  return total;
}

double substrateNoise(const std::vector<Block>& blocks,
                      const std::vector<PlacedBlock>& placed, double halfDistance) {
  std::map<std::string, const Block*> byName;
  for (const auto& b : blocks) byName[b.name] = &b;
  double total = 0.0;
  for (const auto& pa : placed) {
    const Block* a = byName.at(pa.name);
    if (!a->isAnalog()) continue;
    for (const auto& pd : placed) {
      const Block* d = byName.at(pd.name);
      if (!d->isDigital()) continue;
      const double dist = static_cast<double>(geom::centerDistance(pa.rect, pd.rect));
      const double ratio = dist / halfDistance;
      total += a->noiseSensitivity * d->noiseInjection / (1.0 + ratio * ratio);
    }
  }
  return total;
}

namespace {

// ------------------------------------------------------------ slicing tree

constexpr int kOpV = -1;  // vertical cut: children side by side
constexpr int kOpH = -2;  // horizontal cut: children stacked

struct ShapeOption {
  Coord w = 0, h = 0;
  int leftChoice = -1, rightChoice = -1;  // child option indices
  bool rotated = false;                   // leaf only
};

struct EvalNode {
  int blockIdx = -1;  // >= 0: leaf
  int op = 0;
  int left = -1, right = -1;  // EvalNode indices
  std::vector<ShapeOption> options;
};

/// Non-dominated merge of shape options.
void prune(std::vector<ShapeOption>& opts) {
  // Equal (w, h) options can differ in provenance (child choices, rotation),
  // and which one survives pruning decides the reconstructed layout.
  // std::sort is unstable, so break the tie deterministically: prefer the
  // unrotated option, then the lowest child indices.
  std::sort(opts.begin(), opts.end(), [](const ShapeOption& a, const ShapeOption& b) {
    if (a.w != b.w) return a.w < b.w;
    if (a.h != b.h) return a.h < b.h;
    if (a.rotated != b.rotated) return b.rotated;
    if (a.leftChoice != b.leftChoice) return a.leftChoice < b.leftChoice;
    return a.rightChoice < b.rightChoice;
  });
  std::vector<ShapeOption> keep;
  Coord bestH = std::numeric_limits<Coord>::max();
  for (const auto& o : opts) {
    if (o.h < bestH) {
      keep.push_back(o);
      bestH = o.h;
    }
  }
  opts = std::move(keep);
}

/// Evaluate the Polish expression into a node tree; returns root node index.
int buildTree(const std::vector<int>& expr, const std::vector<Block>& blocks, Coord spacing,
              std::vector<EvalNode>& nodes) {
  std::vector<int> stack;
  for (int tok : expr) {
    EvalNode n;
    if (tok >= 0) {
      n.blockIdx = tok;
      const Block& b = blocks[static_cast<std::size_t>(tok)];
      n.options.push_back({b.width + spacing, b.height + spacing, -1, -1, false});
      if (b.width != b.height)
        n.options.push_back({b.height + spacing, b.width + spacing, -1, -1, true});
      prune(n.options);
      nodes.push_back(std::move(n));
      stack.push_back(static_cast<int>(nodes.size()) - 1);
    } else {
      if (stack.size() < 2) throw std::logic_error("buildTree: malformed expression");
      n.op = tok;
      n.right = stack.back();
      stack.pop_back();
      n.left = stack.back();
      stack.pop_back();
      const auto& lo = nodes[static_cast<std::size_t>(n.left)].options;
      const auto& ro = nodes[static_cast<std::size_t>(n.right)].options;
      for (std::size_t i = 0; i < lo.size(); ++i) {
        for (std::size_t j = 0; j < ro.size(); ++j) {
          ShapeOption o;
          o.leftChoice = static_cast<int>(i);
          o.rightChoice = static_cast<int>(j);
          if (tok == kOpV) {
            o.w = lo[i].w + ro[j].w;
            o.h = std::max(lo[i].h, ro[j].h);
          } else {
            o.w = std::max(lo[i].w, ro[j].w);
            o.h = lo[i].h + ro[j].h;
          }
          n.options.push_back(o);
        }
      }
      prune(n.options);
      nodes.push_back(std::move(n));
      stack.push_back(static_cast<int>(nodes.size()) - 1);
    }
  }
  if (stack.size() != 1) throw std::logic_error("buildTree: malformed expression");
  return stack.back();
}

/// Assign block rectangles from a chosen root option.
void assignRects(const std::vector<EvalNode>& nodes, int nodeIdx, int optIdx, Coord x,
                 Coord y, Coord spacing, const std::vector<Block>& blocks,
                 std::vector<PlacedBlock>& out) {
  const EvalNode& n = nodes[static_cast<std::size_t>(nodeIdx)];
  const ShapeOption& o = n.options[static_cast<std::size_t>(optIdx)];
  if (n.blockIdx >= 0) {
    const Block& b = blocks[static_cast<std::size_t>(n.blockIdx)];
    const Coord w = o.rotated ? b.height : b.width;
    const Coord h = o.rotated ? b.width : b.height;
    out.push_back(PlacedBlock{
        b.name, Rect::fromSize(x + spacing / 2, y + spacing / 2, w, h), o.rotated});
    return;
  }
  const auto& lo = nodes[static_cast<std::size_t>(n.left)].options;
  assignRects(nodes, n.left, o.leftChoice, x, y, spacing, blocks, out);
  if (n.op == kOpV) {
    assignRects(nodes, n.right, o.rightChoice,
                x + lo[static_cast<std::size_t>(o.leftChoice)].w, y, spacing, blocks, out);
  } else {
    assignRects(nodes, n.right, o.rightChoice, x,
                y + lo[static_cast<std::size_t>(o.leftChoice)].h, spacing, blocks, out);
  }
}

/// Is expr a valid normalized Polish expression?  (balloting + no repeated
/// adjacent operators of the same kind)
bool normalized(const std::vector<int>& expr) {
  int operands = 0, operators = 0;
  for (std::size_t i = 0; i < expr.size(); ++i) {
    if (expr[i] >= 0) {
      ++operands;
    } else {
      ++operators;
      if (operators >= operands) return false;
      if (i > 0 && expr[i - 1] == expr[i]) return false;
    }
  }
  return operands == operators + 1;
}

struct SlicingEval {
  std::vector<PlacedBlock> placed;
  double area = 0.0, wl = 0.0, noise = 0.0;
};

SlicingEval evaluateExpr(const std::vector<int>& expr, const std::vector<Block>& blocks,
                         const std::vector<BlockNet>& nets, const FloorplanOptions& opts) {
  std::vector<EvalNode> nodes;
  const int root = buildTree(expr, blocks, opts.spacing, nodes);
  // Choose the min-area root option.
  const auto& ro = nodes[static_cast<std::size_t>(root)].options;
  std::size_t best = 0;
  for (std::size_t i = 1; i < ro.size(); ++i)
    if (ro[i].w * ro[i].h < ro[best].w * ro[best].h) best = i;
  SlicingEval ev;
  assignRects(nodes, root, static_cast<int>(best), 0, 0, opts.spacing, blocks, ev.placed);
  ev.area = static_cast<double>(ro[best].w) * static_cast<double>(ro[best].h);
  ev.wl = blockWirelength(nets, ev.placed);
  ev.noise = substrateNoise(blocks, ev.placed, opts.noiseHalfDistance);
  return ev;
}

}  // namespace

Floorplan slicingFloorplan(const std::vector<Block>& blocks, const std::vector<BlockNet>& nets,
                           const FloorplanOptions& opts) {
  if (blocks.empty()) throw std::invalid_argument("slicingFloorplan: no blocks");
  const std::size_t n = blocks.size();

  // Initial expression: 0 1 V 2 V 3 V ... (a row).
  std::vector<int> expr;
  expr.push_back(0);
  for (std::size_t i = 1; i < n; ++i) {
    expr.push_back(static_cast<int>(i));
    expr.push_back(i % 2 == 0 ? kOpH : kOpV);
  }

  // Normalization scales from the initial solution.
  const SlicingEval init = evaluateExpr(expr, blocks, nets, opts);
  const double areaNorm = std::max(init.area, 1.0);
  const double wlNorm = std::max(init.wl, 1.0);
  const double noiseNorm = std::max(init.noise, 1e-9);

  auto costOf = [&](const std::vector<int>& e) {
    const SlicingEval ev = evaluateExpr(e, blocks, nets, opts);
    return opts.areaWeight * ev.area / areaNorm + opts.wireWeight * ev.wl / wlNorm +
           opts.noiseWeight * ev.noise / noiseNorm;
  };

  std::vector<int> prev = expr, best = expr;
  num::AnnealProblem prob;
  prob.cost = [&] { return costOf(expr); };
  prob.propose = [&](num::Rng& rng) {
    prev = expr;
    for (int attempt = 0; attempt < 30; ++attempt) {
      std::vector<int> cand = expr;
      const int kind = rng.integer(0, 2);
      if (kind == 0) {
        // M1: swap two adjacent operands.
        std::vector<std::size_t> operandPos;
        for (std::size_t i = 0; i < cand.size(); ++i)
          if (cand[i] >= 0) operandPos.push_back(i);
        const std::size_t k = rng.index(operandPos.size() - 1);
        std::swap(cand[operandPos[k]], cand[operandPos[k + 1]]);
      } else if (kind == 1) {
        // M2: complement an operator chain.
        std::vector<std::size_t> opPos;
        for (std::size_t i = 0; i < cand.size(); ++i)
          if (cand[i] < 0) opPos.push_back(i);
        std::size_t i = opPos[rng.index(opPos.size())];
        while (i < cand.size() && cand[i] < 0) {
          cand[i] = cand[i] == kOpV ? kOpH : kOpV;
          ++i;
        }
      } else {
        // M3: swap an adjacent operand/operator pair.
        const std::size_t i = 1 + rng.index(cand.size() - 1);
        if ((cand[i - 1] >= 0) != (cand[i] >= 0)) std::swap(cand[i - 1], cand[i]);
      }
      if (normalized(cand)) {
        expr = std::move(cand);
        return;
      }
    }
  };
  prob.undo = [&] { expr = prev; };
  prob.snapshot = [&] { best = expr; };

  num::AnnealOptions aopts = opts.anneal;
  aopts.seed = opts.seed;
  aopts.problemSizeHint = n;
  num::anneal(prob, aopts);

  const SlicingEval ev = evaluateExpr(best, blocks, nets, opts);
  Floorplan fp;
  fp.blocks = ev.placed;
  Rect bb;
  for (const auto& b : fp.blocks) bb = bb.unionWith(b.rect);
  fp.chipBox = bb.inflated(opts.spacing / 2);
  fp.wirelength = ev.wl;
  fp.substrateNoise = ev.noise;
  fp.overlapFree = true;  // slicing construction cannot overlap
  for (std::size_t i = 0; i < fp.blocks.size(); ++i)
    for (std::size_t j = i + 1; j < fp.blocks.size(); ++j)
      if (fp.blocks[i].rect.overlaps(fp.blocks[j].rect)) fp.overlapFree = false;
  return fp;
}

Floorplan wrightFloorplan(const std::vector<Block>& blocks, const std::vector<BlockNet>& nets,
                          const FloorplanOptions& opts) {
  if (blocks.empty()) throw std::invalid_argument("wrightFloorplan: no blocks");
  const std::size_t n = blocks.size();

  // Seed from the slicing floorplan (legal start).
  FloorplanOptions seedOpts = opts;
  seedOpts.anneal.stagnationStages = 4;
  const Floorplan seed = slicingFloorplan(blocks, nets, seedOpts);

  struct State {
    std::vector<PlacedBlock> placed;
  } st{seed.blocks}, prev = st, best = st;

  const double areaNorm =
      std::max(1.0, static_cast<double>(seed.chipBox.area()));
  const double wlNorm = std::max(seed.wirelength, 1.0);
  const double noiseNorm = std::max(seed.substrateNoise, 1e-9);
  double overlapScale = 1.0;
  std::size_t movesDone = 0;

  auto cost = [&] {
    Rect bb;
    double overlap = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      bb = bb.unionWith(st.placed[i].rect);
      for (std::size_t j = i + 1; j < n; ++j) {
        const Rect o = st.placed[i].rect.inflated(opts.spacing / 2)
                           .intersect(st.placed[j].rect.inflated(opts.spacing / 2));
        overlap += static_cast<double>(o.area());
      }
    }
    const double noise = substrateNoise(blocks, st.placed, opts.noiseHalfDistance);
    return opts.areaWeight * static_cast<double>(bb.area()) / areaNorm +
           opts.wireWeight * blockWirelength(nets, st.placed) / wlNorm +
           opts.noiseWeight * noise / noiseNorm +
           4.0 * overlapScale * overlap / areaNorm;
  };

  num::AnnealProblem prob;
  prob.cost = cost;
  prob.propose = [&](num::Rng& rng) {
    prev = st;
    const std::size_t i = rng.index(n);
    const int kind = rng.integer(0, 3);
    const Coord range = std::max<Coord>(
        40, static_cast<Coord>(static_cast<double>(seed.chipBox.width()) * 0.2));
    switch (kind) {
      case 0:
      case 1: {
        const Coord dx = rng.integer(-static_cast<int>(range), static_cast<int>(range));
        const Coord dy = rng.integer(-static_cast<int>(range), static_cast<int>(range));
        st.placed[i].rect = st.placed[i].rect.translated(dx, dy);
        break;
      }
      case 2: {  // rotate in place about the lower-left corner
        auto& b = st.placed[i];
        b.rect = Rect::fromSize(b.rect.x0, b.rect.y0, b.rect.height(), b.rect.width());
        b.rotated = !b.rotated;
        break;
      }
      case 3: {  // swap two block positions
        const std::size_t j = rng.index(n);
        const geom::Point pi{st.placed[i].rect.x0, st.placed[i].rect.y0};
        const geom::Point pj{st.placed[j].rect.x0, st.placed[j].rect.y0};
        st.placed[i].rect = st.placed[i].rect.translated(pj.x - pi.x, pj.y - pi.y);
        st.placed[j].rect = st.placed[j].rect.translated(pi.x - pj.x, pi.y - pj.y);
        break;
      }
      default:
        break;
    }
    if (++movesDone % 256 == 0) overlapScale = std::min(64.0, overlapScale * 1.2);
  };
  prob.undo = [&] { st = prev; };
  prob.snapshot = [&] { best = st; };

  num::AnnealOptions aopts = opts.anneal;
  aopts.seed = opts.seed;
  aopts.problemSizeHint = n;
  num::anneal(prob, aopts);

  // Legalize residual overlaps by pushing blocks rightward.
  auto& placed = best.placed;
  bool moved = true;
  std::size_t guard = 0;
  while (moved && guard++ < 64) {
    moved = false;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        const Rect a = placed[i].rect.inflated(opts.spacing / 2);
        const Rect b = placed[j].rect.inflated(opts.spacing / 2);
        if (!a.overlaps(b)) continue;
        if (placed[i].rect.x0 > placed[j].rect.x0) continue;
        placed[j].rect = placed[j].rect.translated(a.x1 - b.x0 + 1, 0);
        moved = true;
      }
  }

  Floorplan fp;
  fp.blocks = placed;
  Rect bb;
  for (const auto& b : fp.blocks) bb = bb.unionWith(b.rect);
  fp.chipBox = bb.inflated(opts.spacing / 2);
  fp.wirelength = blockWirelength(nets, fp.blocks);
  fp.substrateNoise = substrateNoise(blocks, fp.blocks, opts.noiseHalfDistance);
  fp.overlapFree = true;
  for (std::size_t i = 0; i < fp.blocks.size(); ++i)
    for (std::size_t j = i + 1; j < fp.blocks.size(); ++j)
      if (fp.blocks[i].rect.overlaps(fp.blocks[j].rect)) fp.overlapFree = false;
  return fp;
}

}  // namespace amsyn::layout
