#include "layout/system/channel.hpp"

#include <algorithm>
#include <functional>
#include <set>
#include <stdexcept>

namespace amsyn::layout {

namespace {

struct NetInfo {
  std::string name;
  WireClass cls = WireClass::Quiet;
  int width = 1;
  int colMin = 0, colMax = 0;
  std::set<std::string> mustBeAbove;  // nets this net must be above
};

bool spansOverlap(int a0, int a1, int b0, int b1) { return a0 <= b1 && b0 <= a1; }

}  // namespace

ChannelResult routeChannel(const std::vector<ChannelPin>& pins,
                           const std::vector<ChannelNetSpec>& specs,
                           const ChannelOptions& opts) {
  ChannelResult result;

  // --- net intervals ---
  std::map<std::string, NetInfo> nets;
  for (const auto& p : pins) {
    auto [it, inserted] = nets.try_emplace(p.net);
    if (inserted) {
      it->second.name = p.net;
      it->second.colMin = it->second.colMax = p.column;
    } else {
      it->second.colMin = std::min(it->second.colMin, p.column);
      it->second.colMax = std::max(it->second.colMax, p.column);
    }
  }
  for (const auto& s : specs) {
    auto it = nets.find(s.name);
    if (it == nets.end()) continue;
    it->second.cls = s.wireClass;
    it->second.width = std::max(1, s.widthTracks);
  }

  // --- vertical constraint graph ---
  std::map<int, std::string> topAt, botAt;
  for (const auto& p : pins) (p.top ? topAt : botAt)[p.column] = p.net;
  for (const auto& [col, tnet] : topAt) {
    auto bit = botAt.find(col);
    if (bit == botAt.end() || bit->second == tnet) continue;
    nets[tnet].mustBeAbove.insert(bit->second);
  }
  // Cycle check (DFS with colors).
  {
    std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
    std::function<bool(const std::string&)> cyclic = [&](const std::string& n) {
      color[n] = 1;
      for (const auto& below : nets[n].mustBeAbove) {
        if (color[below] == 1) return true;
        if (color[below] == 0 && cyclic(below)) return true;
      }
      color[n] = 2;
      return false;
    };
    for (const auto& [name, info] : nets) {
      (void)info;
      if (color[name] == 0 && cyclic(name)) {
        result.routable = false;
        return result;  // cyclic VCG: this dogleg-free router cannot route
      }
    }
  }

  // --- density lower bound ---
  std::map<int, int> density;
  for (const auto& [name, info] : nets) {
    (void)name;
    for (int c = info.colMin; c <= info.colMax; ++c) density[c] += info.width;
  }
  for (const auto& [c, d] : density) {
    (void)c;
    result.densityLowerBound = std::max(result.densityLowerBound, d);
  }

  // --- constrained left-edge, bottom-up ---
  std::set<std::string> placed;
  std::map<int, std::vector<std::pair<int, int>>> occupied;  // track -> spans
  auto trackFree = [&](int track, int c0, int c1) {
    auto it = occupied.find(track);
    if (it == occupied.end()) return true;
    for (const auto& [o0, o1] : it->second)
      if (spansOverlap(c0, c1, o0, o1)) return false;
    return true;
  };

  std::vector<const NetInfo*> order;
  for (const auto& [name, info] : nets) {
    (void)name;
    order.push_back(&info);
  }
  std::sort(order.begin(), order.end(),
            [](const NetInfo* a, const NetInfo* b) { return a->colMin < b->colMin; });

  int track = 0;
  std::size_t guard = 0;
  while (placed.size() < nets.size() && guard++ < 10 * nets.size() + 64) {
    for (const NetInfo* n : order) {
      if (placed.count(n->name)) continue;
      // VCG: everything this net must be above is already placed.
      bool ready = true;
      for (const auto& below : n->mustBeAbove)
        if (!placed.count(below)) ready = false;
      if (!ready) continue;
      // Track-span availability for the net's width.
      bool free = true;
      for (int t = track; t < track + n->width; ++t)
        if (!trackFree(t, n->colMin, n->colMax)) free = false;
      if (!free) continue;

      // Class-separation check against the tracks below.
      int conflictLo = 0, conflictHi = -1;
      for (int t = track - opts.classSeparationTracks; t < track; ++t) {
        for (const auto& asg : result.assignments) {
          if (asg.net == "(shield)") continue;
          if (asg.track + asg.widthTracks - 1 != t && asg.track != t) continue;
          const auto cit = nets.find(asg.net);
          if (cit == nets.end()) continue;
          if (!incompatible(cit->second.cls, n->cls)) continue;
          if (!spansOverlap(asg.colMin, asg.colMax, n->colMin, n->colMax)) continue;
          // Is there a shield already between them?
          bool shielded = false;
          for (const auto& sh : result.assignments)
            if (sh.net == "(shield)" && sh.track > t && sh.track < track + n->width &&
                spansOverlap(sh.colMin, sh.colMax, n->colMin, n->colMax))
              shielded = true;
          if (shielded) continue;
          conflictLo = std::max(asg.colMin, n->colMin);
          conflictHi = std::min(asg.colMax, n->colMax);
        }
      }
      if (conflictHi >= conflictLo && conflictHi >= 0) {
        if (opts.insertShields && trackFree(track, conflictLo, conflictHi)) {
          // Drop a grounded shield into this track over the conflict span;
          // the net itself waits for the next track.
          result.assignments.push_back(
              ChannelAssignment{"(shield)", track, 1, conflictLo, conflictHi});
          occupied[track].push_back({conflictLo, conflictHi});
          ++result.shieldsInserted;
        }
        continue;  // separation: the net cannot enter this track
      }

      // Place the net.
      result.assignments.push_back(
          ChannelAssignment{n->name, track, n->width, n->colMin, n->colMax});
      for (int t = track; t < track + n->width; ++t)
        occupied[t].push_back({n->colMin, n->colMax});
      placed.insert(n->name);
    }
    ++track;
  }

  result.routable = placed.size() == nets.size();
  for (const auto& a : result.assignments)
    result.height = std::max(result.height, a.track + a.widthTracks);

  // --- crosstalk adjacency metric ---
  for (const auto& a : result.assignments) {
    if (a.net == "(shield)") continue;
    for (const auto& b : result.assignments) {
      if (b.net == "(shield)" || &a == &b) continue;
      // b directly above a?
      if (b.track != a.track + a.widthTracks) continue;
      const auto ai = nets.find(a.net), bi = nets.find(b.net);
      if (ai == nets.end() || bi == nets.end()) continue;
      if (!incompatible(ai->second.cls, bi->second.cls)) continue;
      const int lo = std::max(a.colMin, b.colMin);
      const int hi = std::min(a.colMax, b.colMax);
      if (hi >= lo) result.crosstalkAdjacency += hi - lo + 1;
    }
  }
  return result;
}

}  // namespace amsyn::layout
