#include "core/flow.hpp"

#include <utility>

#include "core/flowgraph.hpp"
#include "core/metrics.hpp"
#include "core/parallel.hpp"
#include "core/runreport.hpp"
#include "core/trace.hpp"
#include "numeric/rng.hpp"
#include "sim/ac.hpp"
#include "sim/dc.hpp"
#include "sim/measure.hpp"
#include "sim/stats.hpp"
#include "sizing/perfmodel.hpp"

namespace amsyn::core {

const char* stageStatusName(StageStatus s) {
  switch (s) {
    case StageStatus::Passed:
      return "passed";
    case StageStatus::Failed:
      return "failed";
    case StageStatus::Skipped:
      return "skipped";
  }
  return "unknown";
}

sizing::Performance measureAmplifier(const circuit::Netlist& net,
                                     const circuit::Process& proc,
                                     const AcTestbench& tb, EvalBudget* budget) {
  AMSYN_SPAN("measure");
  sizing::Performance perf;
  try {
    sim::Mna mna(net, proc);
    sim::DcOptions dopts;
    dopts.budget = budget;
    const auto op =
        sim::dcOperatingPoint(mna, sim::flatStart(mna, proc.vdd / 2), dopts);
    if (!op.converged) {
      sizing::markInfeasible(perf, op.status);  // dc already tallied the failure
      return perf;
    }
    perf["power"] = sim::staticPower(mna, op);
    const auto sweep = sim::acAnalysis(
        mna, op, tb.probeNode,
        sim::logspace(tb.acStartHz, tb.acStopHz, tb.acPointsPerDecade), budget);
    if (sweep.status != EvalStatus::Ok) {
      sizing::markInfeasible(perf, sweep.status);
      return perf;
    }
    perf["gain_db"] = sim::dcGainDb(sweep);
    const auto ugf = sim::unityGainFrequency(sweep);
    const auto pm = sim::phaseMarginDeg(sweep);
    if (ugf) perf["ugf"] = *ugf;
    if (pm) perf["pm"] = *pm;
    if (!ugf || !pm) {
      sizing::markInfeasible(perf, EvalStatus::NoAcCrossing);
      sim::recordEvalFailure(EvalStatus::NoAcCrossing);
    }
  } catch (...) {
    // A malformed netlist (bad node names from layout annotation, ...) is
    // verification data, not a crash; bad_alloc is classified apart so the
    // retry layer never re-runs an allocation failure.
    const EvalStatus st = classifyCurrentException();
    sizing::markInfeasible(perf, st);
    sim::recordEvalFailure(st);
  }
  return perf;
}

FlowResult synthesizeAmplifier(const sizing::SpecSet& specs, const circuit::Process& proc,
                               const FlowOptions& opts) {
  FlowEngine engine(amplifierStageGraph());
  return engine.run(specs, proc, opts);
}

FlowOptions batchItemOptions(const FlowOptions& base, std::size_t index) {
  FlowOptions item = base;
  item.seed = num::Rng::streamSeed(base.seed, index);
  return item;
}

std::vector<FlowResult> synthesizeBatch(const std::vector<sizing::SpecSet>& batch,
                                        const circuit::Process& proc,
                                        const FlowOptions& opts) {
  AMSYN_SPAN("flow_batch");
  static const metrics::CounterId kBatchDesigns =
      metrics::registry().counter("core.flow.batch.designs");
  metrics::add(kBatchDesigns, batch.size());
  // Configure the caller's context once up front; each per-design engine
  // re-runs the same (idempotent) application on its job context, so
  // fan-out order cannot matter.
  ExecutionContext& parent = ExecutionContext::current();
  applyEvalCacheOptions(opts.evalCache, parent);
  applySolverOption(opts.solver, parent);
  applySurrogateOption(opts.surrogate, parent);
  return parallelMap(batch.size(), [&](std::size_t i) {
    // One child context per job: same config/handles as the caller, its own
    // fault schedule (inheriting the caller's armed plan through the chain)
    // and a metrics slice chained under the caller's.  The engine installs
    // it for the job's duration.
    const auto jobContext = parent.makeChild();
    FlowEngine engine(amplifierStageGraph());
    return engine.run(batch[i], proc, batchItemOptions(opts, i), *jobContext);
  });
}

namespace {

RunReport buildFlowReport(const FlowResult& result) {
  RunReport report;
  report.name = "flow";
  report.addInfo("topology", result.topology)
      .addInfo("failure_reason", result.failureReason)
      .addInfo("failure_status", evalStatusName(result.failureStatus));
  report.addValue("success", result.success ? 1.0 : 0.0)
      .addValue("redesigns", static_cast<double>(result.redesigns))
      .addValue("verifications", static_cast<double>(result.verifications.size()));
  for (std::size_t i = 0; i < result.verifications.size(); ++i) {
    const auto& v = result.verifications[i];
    const std::string prefix = "verify." + std::to_string(i) + ".";
    report.addInfo(prefix + "stage", v.stage);
    report.addValue(prefix + "passed", v.passed ? 1.0 : 0.0);
    for (const auto& p : electricalPerformanceTable())
      if (auto it = v.measured.find(p.name); it != v.measured.end())
        report.addValue(prefix + p.name, it->second);
  }
  report.addValue("stages", static_cast<double>(result.stageRecords.size()));
  for (std::size_t i = 0; i < result.stageRecords.size(); ++i) {
    const auto& s = result.stageRecords[i];
    const std::string prefix = "stage." + std::to_string(i) + ".";
    report.addInfo(prefix + "name", s.name);
    report.addInfo(prefix + "status", stageStatusName(s.status));
    report.addInfo(prefix + "detail", s.detail);
    report.addInfo(prefix + "eval_status", evalStatusName(s.evalStatus));
    report.addValue(prefix + "attempt", static_cast<double>(s.attempt));
    report.addValue(prefix + "seconds", s.seconds);
  }
  return report;
}

}  // namespace

std::string flowRunReportJson(const FlowResult& result) {
  return buildFlowReport(result).toJson();
}

std::string flowRunReportJson(const FlowResult& result, const ExecutionContext& ctx) {
  RunReport report = buildFlowReport(result);
  // The context's counter slice rides along as ordinary values: what THIS
  // job/tenant recorded, next to the process-wide registry snapshot the
  // report always carries.  Zero-delta counters are omitted (the slice map
  // is sparse), so presence means "this context actually recorded it".
  for (const auto& [name, delta] : ctx.sliceCounters())
    report.addValue("ctx." + name, static_cast<double>(delta));
  return report.toJson();
}

}  // namespace amsyn::core
