#include "core/flow.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/evalcache.hpp"
#include "core/runreport.hpp"
#include "core/trace.hpp"
#include "sim/ac.hpp"
#include "sim/dc.hpp"
#include "sim/measure.hpp"
#include "sim/stats.hpp"
#include "sizing/eqmodel.hpp"
#include "sizing/perfmodel.hpp"
#include "knowledge/opamp_plans.hpp"
#include "sizing/opamp.hpp"
#include "topology/select.hpp"

namespace amsyn::core {

sizing::Performance measureAmplifier(const circuit::Netlist& net,
                                     const circuit::Process& proc) {
  AMSYN_SPAN("measure");
  sizing::Performance perf;
  try {
    sim::Mna mna(net, proc);
    const auto op = sim::dcOperatingPoint(mna, sim::flatStart(mna, proc.vdd / 2));
    if (!op.converged) {
      sizing::markInfeasible(perf, op.status);  // dc already tallied the failure
      return perf;
    }
    perf["power"] = sim::staticPower(mna, op);
    const auto sweep = sim::acAnalysis(mna, op, "out", sim::logspace(1.0, 1e9, 6));
    if (sweep.status != EvalStatus::Ok) {
      sizing::markInfeasible(perf, sweep.status);
      return perf;
    }
    perf["gain_db"] = sim::dcGainDb(sweep);
    const auto ugf = sim::unityGainFrequency(sweep);
    const auto pm = sim::phaseMarginDeg(sweep);
    if (ugf) perf["ugf"] = *ugf;
    if (pm) perf["pm"] = *pm;
    if (!ugf || !pm) {
      sizing::markInfeasible(perf, EvalStatus::NoAcCrossing);
      sim::recordEvalFailure(EvalStatus::NoAcCrossing);
    }
  } catch (...) {
    // A malformed netlist (bad node names from layout annotation, ...) is
    // verification data, not a crash.
    sizing::markInfeasible(perf, EvalStatus::InternalError);
    sim::recordEvalFailure(EvalStatus::InternalError);
  }
  return perf;
}

FlowResult synthesizeAmplifier(const sizing::SpecSet& specs, const circuit::Process& proc,
                               const FlowOptions& opts) {
  AMSYN_SPAN("flow");
  FlowResult result;

  if (opts.evalCacheCapacity == std::numeric_limits<std::size_t>::max())
    cache::EvalCache::instance().setEnabled(false);
  else if (opts.evalCacheCapacity > 0)
    cache::EvalCache::instance().setCapacity(opts.evalCacheCapacity);

  // Verification passes only judge constraint specs the simulator measures.
  sizing::SpecSet electrical;
  for (const auto& s : specs.specs()) {
    if (s.isObjective()) continue;
    if (s.performance == "gain_db" || s.performance == "ugf" || s.performance == "pm" ||
        s.performance == "power")
      electrical.require(s.performance, s.kind, s.bound, s.weight);
  }

  const auto lib = topology::amplifierLibrary(proc, opts.loadCap);

  // Model-calibration state ("closing the loop" with *measured* corrections
  // rather than blind margins): how far the simulator lands below the
  // equation model, and how much the layout parasitics knock off on top.
  double ugfModelRatio = 1.0;   // sim / equation-model prediction
  double ugfLayoutRatio = 1.0;  // post-layout / pre-layout
  double pmModelDelta = 0.0;    // eq - sim (degrees lost to modeling error)
  double pmLayoutDelta = 0.0;   // pre - post (degrees lost to parasitics)

  for (std::size_t attempt = 0; attempt <= opts.maxRedesigns; ++attempt) {
    if (attempt > 0) ++result.redesigns;

    // --- top-down: topology selection + sizing against retargeted specs ---
    // Parasitics and model error mainly eat bandwidth and phase margin, so
    // each redesign hands the sizer bounds corrected by what verification
    // actually measured, plus a small safety factor that grows per attempt.
    const double safety = 1.0 + 0.05 * static_cast<double>(attempt);
    sizing::SpecSet target;
    for (const auto& s : specs.specs()) {
      sizing::Spec t = s;
      if (!t.isObjective()) {
        if (t.performance == "ugf" && t.kind == sizing::SpecKind::GreaterEqual)
          t.bound = t.bound / std::max(ugfModelRatio * ugfLayoutRatio, 0.2) * safety;
        if (t.performance == "pm" && t.kind == sizing::SpecKind::GreaterEqual)
          t.bound = std::min(
              t.bound + (pmModelDelta + pmLayoutDelta) * safety + 2.0 * attempt, 80.0);
      }
      if (t.isObjective())
        (t.kind == sizing::SpecKind::Minimize)
            ? target.minimize(t.performance, t.weight, t.norm)
            : target.maximize(t.performance, t.weight, t.norm);
      else
        target.require(t.performance, t.kind, t.bound, t.weight);
    }

    sizing::SynthesisOptions sopts = opts.synthesis;
    sopts.seed = opts.seed + attempt;
    // Redesigns chase a progressively tighter corner of the design space;
    // give the annealer a bigger budget each round.
    if (attempt > 0) {
      sopts.anneal.movesPerStage =
          std::max<std::size_t>(sopts.anneal.movesPerStage, 400 * (attempt + 1));
      sopts.anneal.stagnationStages = 20;
      sopts.refineEvaluations = std::max<std::size_t>(sopts.refineEvaluations, 800);
    }
    // Candidate designs: the optimizer's (objective-aware) point, plus the
    // knowledge-based design plan's point (IDAC/OASYS-style; always well-
    // proportioned, so the equation model tracks the simulator closely on
    // it).  The first candidate that passes pre-layout verification wins.
    struct Candidate {
      std::string topology;
      std::vector<double> x;
      sizing::Performance predicted;
    };
    std::vector<Candidate> candidates;

    const auto sel = topology::selectAndSize(lib, target, sopts);
    if (sel.success)
      candidates.push_back({sel.topology, sel.sizing.x, sel.sizing.performance});

    {
      // Plan candidate from the retargeted bounds.
      std::map<std::string, double> planIn{{"spec.cload", opts.loadCap}};
      for (const auto& s : target.specs()) {
        if (s.isObjective()) continue;
        if (s.performance == "gain_db") planIn["spec.gain_db"] = s.bound;
        if (s.performance == "ugf") planIn["spec.ugf"] = s.bound;
        if (s.performance == "pm") planIn["spec.pm"] = s.bound;
        if (s.performance == "slew") planIn["spec.slew"] = s.bound;
        if (s.performance == "power" && s.kind == sizing::SpecKind::LessEqual)
          planIn["spec.power_max"] = s.bound;
      }
      if (planIn.count("spec.gain_db") && planIn.count("spec.ugf")) {
        if (!planIn.count("spec.pm")) planIn["spec.pm"] = 60.0;
        if (!planIn.count("spec.slew")) planIn["spec.slew"] = 2.0 * planIn["spec.ugf"];
        const auto plan = knowledge::twoStageOpampPlan();
        const auto pres = plan.execute(proc, planIn);
        if (pres.success) {
          const sizing::TwoStageEquationModel model(proc, opts.loadCap);
          const auto x = knowledge::extractTwoStageDesign(pres.context);
          candidates.push_back({"two-stage-miller", x, model.evaluate(x)});
        }
      }
    }
    if (candidates.empty()) {
      result.failureReason = "sizing failed to meet the (possibly inflated) specs";
      result.failureStatus = EvalStatus::Ok;  // design failure, not machinery
      continue;
    }

    // --- build + pre-layout-verify each candidate; take the first pass ---
    circuit::Netlist schematic;
    VerificationRecord pre;
    pre.stage = "pre-layout";
    bool anyPre = false;
    for (const auto& cand : candidates) {
      circuit::Netlist net;
      if (cand.topology == "two-stage-miller") {
        const sizing::TwoStageEquationModel model(proc, opts.loadCap);
        net = sizing::buildTwoStageOpamp(model.toParams(cand.x), proc,
                                         {opts.loadCap, 2.2, true});
      } else {
        const sizing::OtaEquationModel model(proc, opts.loadCap);
        net = sizing::buildOta(model.toParams(cand.x), proc, {opts.loadCap, 2.2, true});
      }
      const auto measured = measureAmplifier(net, proc);
      const bool passed =
          !measured.count("_infeasible") && electrical.satisfied(measured, 0.15);
      // Update the model-calibration terms from this measurement.
      if (measured.count("ugf") && cand.predicted.count("ugf") &&
          cand.predicted.at("ugf") > 0)
        ugfModelRatio = measured.at("ugf") / cand.predicted.at("ugf");
      if (measured.count("pm") && cand.predicted.count("pm"))
        pmModelDelta = std::max(0.0, cand.predicted.at("pm") - measured.at("pm"));
      if (!anyPre || passed) {
        pre.measured = measured;
        pre.passed = passed;
        schematic = std::move(net);
        result.topology = cand.topology;
        result.designPoint = cand.x;
        anyPre = true;
      }
      if (passed) break;
    }
    result.schematic = schematic;
    result.verifications.push_back(pre);
    if (!pre.passed) {
      result.failureStatus = sizing::performanceStatus(pre.measured);
      result.failureReason = "pre-layout verification failed (model/sim mismatch)";
      if (result.failureStatus != EvalStatus::Ok)
        result.failureReason +=
            std::string(": ") + evalStatusName(result.failureStatus);
      continue;  // redesign with the updated corrections
    }

    // --- bottom-up: layout + extraction ---
    CellLayoutOptions lopts = opts.layout;
    lopts.seed = opts.seed + attempt;
    {
      AMSYN_SPAN("flow_layout");
      result.cell = layoutCell(schematic, proc, lopts);
    }
    if (!result.cell.success) {
      result.failureReason = "cell layout failed (placement/routing)";
      result.failureStatus = EvalStatus::Ok;
      continue;
    }

    // --- post-layout verification on the annotated netlist ---
    VerificationRecord post;
    post.stage = "post-layout";
    post.measured = measureAmplifier(result.cell.annotated, proc);
    post.passed = !post.measured.count("_infeasible") &&
                  electrical.satisfied(post.measured, 0.15);
    result.verifications.push_back(post);
    if (post.measured.count("ugf") && pre.measured.count("ugf") &&
        pre.measured.at("ugf") > 0)
      ugfLayoutRatio = post.measured.at("ugf") / pre.measured.at("ugf");
    if (post.measured.count("pm") && pre.measured.count("pm"))
      pmLayoutDelta = std::max(0.0, pre.measured.at("pm") - post.measured.at("pm"));
    if (post.passed) {
      result.success = true;
      result.failureReason.clear();
      result.failureStatus = EvalStatus::Ok;
      return result;
    }
    result.failureStatus = sizing::performanceStatus(post.measured);
    result.failureReason = "post-layout verification failed; closing the loop";
    if (result.failureStatus != EvalStatus::Ok)
      result.failureReason += std::string(": ") + evalStatusName(result.failureStatus);
  }
  return result;
}

std::string flowRunReportJson(const FlowResult& result) {
  RunReport report;
  report.name = "flow";
  report.addInfo("topology", result.topology)
      .addInfo("failure_reason", result.failureReason)
      .addInfo("failure_status", evalStatusName(result.failureStatus));
  report.addValue("success", result.success ? 1.0 : 0.0)
      .addValue("redesigns", static_cast<double>(result.redesigns))
      .addValue("verifications", static_cast<double>(result.verifications.size()));
  for (std::size_t i = 0; i < result.verifications.size(); ++i) {
    const auto& v = result.verifications[i];
    const std::string prefix = "verify." + std::to_string(i) + ".";
    report.addInfo(prefix + "stage", v.stage);
    report.addValue(prefix + "passed", v.passed ? 1.0 : 0.0);
    for (const char* key : {"gain_db", "ugf", "pm", "power"})
      if (auto it = v.measured.find(key); it != v.measured.end())
        report.addValue(prefix + key, it->second);
  }
  return report.toJson();
}

}  // namespace amsyn::core
