// The single sanctioned locus for AMSYN_* environment reads.
//
// Every process-level tuning knob (threads, solver mode, eval-cache policy,
// surrogate mode, job deadline, topology space) is parsed here and nowhere
// else: core::ContextConfig::fromEnv() snapshots all of them once into a
// plain struct, and the two bottom-layer subsystems that must self-seed
// before any ExecutionContext exists (the shared EvalCache / surrogate
// Store singletons, plus the global thread pool) call the same parsers so
// their defaults cannot drift from the config's.  tools/context_lint.cmake
// fails the build when `getenv("AMSYN_` appears in any other file under
// src/, so new knobs are forced through this header and therefore through
// ContextConfig.
//
// Header-only and dependency-free on purpose: it is included from
// amsyn_metrics-adjacent leaf libraries (evalcache, surrogate, parallel)
// as well as from amsyn_context, so it must sit below all of them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string>

namespace amsyn::core::envknobs {

/// AMSYN_THREADS: worker count for the global pool.  0 = unset or
/// unparseable (callers fall back to hardware_concurrency); parsed values
/// clamp to [1, 512] so a typo cannot spawn an absurd pool.
inline std::size_t threads() {
  const char* env = std::getenv("AMSYN_THREADS");
  if (!env) return 0;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || v < 1) return 0;
  return static_cast<std::size_t>(v > 512 ? 512 : v);
}

/// AMSYN_SOLVER: "auto" (default), "dense", or "sparse" — forwarded to the
/// sim layer's solver-mode parser, so the string is reported verbatim and
/// unknown values fall back to auto there.
inline std::string solver() {
  const char* env = std::getenv("AMSYN_SOLVER");
  return env ? std::string(env) : std::string();
}

/// AMSYN_EVAL_CACHE: enabled unless explicitly turned off with one of
/// "0"/"off"/"false"/"no".
inline bool evalCacheEnabled() {
  if (const char* env = std::getenv("AMSYN_EVAL_CACHE")) {
    const std::string v(env);
    if (v == "0" || v == "off" || v == "false" || v == "no") return false;
  }
  return true;
}

/// AMSYN_EVAL_CACHE_CAPACITY: max resident entries (default 2^16); values
/// below 1 fall back to the default so the cache cannot be configured into
/// a degenerate always-evict state by accident (use AMSYN_EVAL_CACHE=0 to
/// turn it off).
inline std::size_t evalCacheCapacity() {
  if (const char* env = std::getenv("AMSYN_EVAL_CACHE_CAPACITY")) {
    const long long v = std::atoll(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return std::size_t{1} << 16;  // 65536 entries; ~tens of MB of Performance maps
}

/// AMSYN_EVAL_CACHE_QUANTUM: coordinate quantization step for key hashing;
/// only values in (0, 0.5) are meaningful, everything else means "exact
/// bits" (0.0) — the only mode with the bit-identity proof.
inline double evalCacheQuantum() {
  if (const char* env = std::getenv("AMSYN_EVAL_CACHE_QUANTUM")) {
    const double v = std::atof(env);
    if (v > 0.0 && v < 0.5) return v;
  }
  return 0.0;
}

/// AMSYN_SURROGATE mode string: "" / "0" / "off" = Off, "1"/"on"/"true"/
/// "order"/"ordering" = Ordering, "prune"/"pruning" = Pruning.  Returned as
/// a small integer (0/1/2) so this header does not depend on the surrogate
/// library's enum.
inline int surrogateModeIndex() {
  const char* env = std::getenv("AMSYN_SURROGATE");
  if (!env || !*env) return 0;
  const std::string v(env);
  if (v == "1" || v == "on" || v == "true" || v == "order" || v == "ordering") return 1;
  if (v == "prune" || v == "pruning") return 2;
  return 0;
}

/// AMSYN_JOB_DEADLINE_MS: default per-job wall-clock deadline (0 = none).
/// Only a fully-numeric value counts; trailing garbage means unset.
inline std::uint64_t jobDeadlineMs() {
  const char* env = std::getenv("AMSYN_JOB_DEADLINE_MS");
  if (!env) return 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 10);
  if (!end || *end != '\0') return 0;
  return static_cast<std::uint64_t>(v);
}

/// AMSYN_TOPOLOGY_SPACE: "generated"/"composed" select the composed
/// block-level space; anything else (including unset) keeps the legacy
/// curated library.  Returned as 0 (legacy) / 1 (generated).
inline int topologySpaceIndex() {
  const char* env = std::getenv("AMSYN_TOPOLOGY_SPACE");
  if (!env || !*env) return 0;
  const std::string v(env);
  return (v == "generated" || v == "composed") ? 1 : 0;
}

}  // namespace amsyn::core::envknobs
