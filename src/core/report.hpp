// Paper-style result tables: the benches print spec / manual / synthesis
// columns in the format of the paper's Table 1.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace amsyn::core {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void addRow(std::vector<std::string> cells);
  /// Convenience: format a double with the given precision.
  static std::string num(double v, int precision = 3);

  void print(std::ostream& os) const;
  std::string toString() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace amsyn::core
