// Shared work-stealing thread pool behind every parallel evaluation loop in
// amsyn (corner search, genetic topology selection, multi-start annealing,
// Monte-Carlo batches).  The paper's manufacturability section prices
// worst-case corner search at 4x-10x the CPU of nominal design [31]; those
// cycles are embarrassingly parallel, and this pool is where they go.
//
// Design: each worker owns a deque.  Tasks submitted from a worker thread
// land on that worker's own deque and are popped LIFO (cache-warm); other
// workers steal FIFO from the cold end; external submissions go through a
// shared injection queue.  Blocking helpers (core/parallel.hpp barriers) run
// queued tasks while they wait, so nested parallel sections cannot deadlock
// even on a single-thread pool.
//
// Pool size: AMSYN_THREADS environment variable, else hardware_concurrency.
// Determinism is the caller's contract: parallel loops assign work by index
// and derive per-task RNG streams from (seed, index) (numeric/rng.hpp), so
// results are bit-identical at any thread count.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace amsyn::core {

class ThreadPool {
 public:
  /// threads == 0: use configuredThreads() (AMSYN_THREADS env var, else
  /// hardware concurrency).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t threadCount() const { return workers_.size(); }

  /// Enqueue fire-and-forget work.  Called from one of this pool's workers,
  /// the task goes to that worker's own deque; otherwise to the injection
  /// queue.  Tasks still queued when the pool is destroyed are executed
  /// during destruction, never dropped.
  void submit(std::function<void()> task);

  /// Run one queued task on the calling thread, if any is available
  /// anywhere (own deque, injection queue, or stolen).  Returns false when
  /// every queue is empty.  Barriers call this in their wait loop.
  bool tryRunOneTask();

  /// True when the calling thread is one of this pool's workers.
  bool isWorkerThread() const;

  /// Process-wide pool, lazily constructed at configuredThreads() size.
  static ThreadPool& global();

  /// Install `pool` as the pool returned by global() (tests pin thread
  /// counts this way); nullptr restores the default.  Returns the previous
  /// override.  Not safe to call while parallel work is in flight.
  static ThreadPool* setGlobal(ThreadPool* pool);

  /// Thread count requested by the environment: AMSYN_THREADS clamped to
  /// [1, 512], else std::thread::hardware_concurrency(), else 1.
  static std::size_t configuredThreads();

 private:
  struct TaskQueue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void workerLoop(std::size_t self);
  /// Pop from this worker's own deque (LIFO hot end).
  bool popLocal(std::size_t self, std::function<void()>& out);
  /// Pop from the injection queue or steal from another worker (FIFO cold
  /// end).  `self` == threadCount() means "external thread, steal anywhere".
  bool popShared(std::size_t self, std::function<void()>& out);

  std::vector<std::unique_ptr<TaskQueue>> local_;
  TaskQueue inject_;
  std::mutex sleepMutex_;
  std::condition_variable sleepCv_;
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> queued_{0};  ///< submitted, not yet dequeued
  std::vector<std::thread> workers_;
};

}  // namespace amsyn::core
