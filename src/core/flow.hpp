// The hierarchical performance-driven design methodology of section 2.1 —
// the loop "most experimental analog CAD systems" run:
//
//   top-down:   topology selection -> specification translation (sizing)
//               -> design verification (simulation)
//   bottom-up:  layout generation -> detailed verification after extraction
//
// with redesign iterations when verification fails at any point, including
// the still-open problem the paper flags in section 3.1: "closing the loop"
// from cell layout back to circuit synthesis.  Here the close is concrete:
// post-layout failures feed measured model/parasitic corrections back into
// the spec bounds handed to the sizer (margin-inflation retargeting) and
// the whole flow re-runs.
//
// The flow itself is a staged graph (core/flowgraph.hpp): each phase above
// is one FlowStage, and a FlowEngine executes the declared stage sequence
// with the redesign loop, retargeting, and calibration feedback as engine
// policy.  synthesizeAmplifier assembles the amplifier stage graph;
// synthesizeBatch fans many spec sets across the work-stealing pool.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/celllayout.hpp"
#include "core/evalstatus.hpp"
#include "core/performances.hpp"
#include "core/resilience.hpp"
#include "sizing/spec.hpp"
#include "sizing/synth.hpp"
#include "topology/library.hpp"

namespace amsyn::core {

class ExecutionContext;  // core/context.hpp

/// AC verification testbench descriptor: which node the verification stage
/// probes and the frequency grid it sweeps.  Defaults reproduce the classic
/// open-loop opamp bench (probe "out", 1 Hz .. 1 GHz, 6 points/decade).
struct AcTestbench {
  std::string probeNode = "out";
  double acStartHz = 1.0;
  double acStopHz = 1e9;
  std::size_t acPointsPerDecade = 6;
};

/// Explicit tri-state configuration of the process-wide evaluation cache
/// (core/evalcache.hpp) applied at flow start.  Replaces the former
/// `evalCacheCapacity` sentinel overload (0 = keep, SIZE_MAX = disable).
/// The cache only changes *speed*, never results — see core/evalcache.hpp
/// for the correctness contract.
struct EvalCacheOptions {
  enum class Mode {
    Default,   ///< keep the current / AMSYN_EVAL_CACHE* env-derived setting
    Disabled,  ///< switch the cache off for this process
    Bounded,   ///< set the capacity to `capacity` entries
  };
  Mode mode = Mode::Default;
  /// Max resident entries; meaningful only in Bounded mode (0 restores the
  /// default / AMSYN_EVAL_CACHE_CAPACITY value, per EvalCache::setCapacity).
  std::size_t capacity = 0;

  static EvalCacheOptions defaults() { return {}; }
  static EvalCacheOptions disabled() { return {Mode::Disabled, 0}; }
  static EvalCacheOptions bounded(std::size_t entries) {
    return {Mode::Bounded, entries};
  }
};

/// Which linear-solver kernel the simulation analyses use (sim/solver.hpp).
/// Default keeps the current / AMSYN_SOLVER env-derived mode; the other
/// values set the process-wide mode at flow start.  Like the eval cache,
/// this knob only changes *speed*: the sparse path replays the dense
/// kernel's arithmetic bit-exactly (see numeric/sparse_lu.hpp), so flow
/// results are identical across modes.
enum class SolverOption {
  Default,  ///< keep the current / AMSYN_SOLVER env-derived setting
  Auto,     ///< sparse above a size threshold, dense below
  Dense,    ///< always the dense LU kernel
  Sparse,   ///< always the sparse path (dense fallback on guard trips)
};

/// Learned-surrogate screening mode (core/surrogate.hpp) applied process-
/// wide at flow start.  Ordering only permutes the parallel evaluation
/// order of ranked batches — results stay bit-identical (the
/// tests/surrogate_test.cpp differential suite proves it); Pruning may skip
/// confidently-infeasible evaluations and therefore can change results —
/// never the default, and every pruned candidate is logged for audit.
enum class SurrogateOption {
  Default,   ///< keep the current / AMSYN_SURROGATE env-derived setting
  Off,       ///< surrogate neither trains nor predicts
  Ordering,  ///< train + pre-rank evaluation batches (bit-identical)
  Pruning,   ///< ordering + skip confidently-infeasible evaluations
};

struct FlowOptions {
  double loadCap = 5e-12;
  std::size_t maxRedesigns = 4;   ///< layout->synthesis loop closures
  double marginInflation = 1.30;  ///< spec tightening per redesign
  sizing::SynthesisOptions synthesis;
  CellLayoutOptions layout;
  /// Verification testbench: probe node + AC sweep grid used by both the
  /// pre- and post-layout verify stages.
  AcTestbench testbench;
  std::uint64_t seed = 1;
  /// Candidate space the topology-select stage ranks: the legacy
  /// hand-written pair, the generated functional-block composition space
  /// (topology/compose.hpp), or Default = the AMSYN_TOPOLOGY_SPACE env
  /// choice (unset -> Legacy).  Both spaces contain the legacy cells with
  /// bit-identical models, so flows whose specs the legacy cells win are
  /// identical across spaces.
  topology::TopologySpace topologySpace = topology::TopologySpace::Default;
  EvalCacheOptions evalCache;
  SolverOption solver = SolverOption::Default;
  SurrogateOption surrogate = SurrogateOption::Default;
  /// Per-job wall-clock deadline in ms (0 = the AMSYN_JOB_DEADLINE_MS env
  /// var, else none).  The engine checks it at every stage boundary and
  /// arms it on the verification measurements' budgets, so a livelocked
  /// evaluation stops at the next strided cancel point.  Expiry is
  /// *terminal* for the job: the flow returns immediately with
  /// failureStatus deadline_expired, skipping remaining redesigns.  A
  /// deadline trips at a machine-dependent point by nature — leave it 0
  /// where bit-reproducible batches matter.
  std::uint64_t deadlineMs = 0;
  /// Per-stage retry policy (default: no retries, exactly the pre-existing
  /// behavior).  A failed stage whose status the policy classifies as
  /// transient re-runs — after a deterministic seeded backoff — up to
  /// maxAttempts total executions; every execution appends its own
  /// StageRecord and counts into core.flow.retry.*.
  RetryPolicy stageRetry;
};

/// Record of one verification: measured performances vs the spec verdict.
struct VerificationRecord {
  std::string stage;  ///< "pre-layout" or "post-layout"
  sizing::Performance measured;
  bool passed = false;
};

/// How one stage execution ended (see core/flowgraph.hpp for the stage
/// interface).  Skipped means the stage had nothing to contribute but the
/// attempt continues (e.g. the optimizer found no candidate — the plan
/// provider may still produce one); Failed aborts the attempt and triggers
/// a redesign.
enum class StageStatus : std::uint8_t { Passed, Failed, Skipped };

/// Stable lowercase name ("passed" / "failed" / "skipped").
const char* stageStatusName(StageStatus s);

/// Structured record of one stage execution inside one attempt, appended to
/// FlowResult::stageRecords by the engine and serialized by
/// flowRunReportJson.  `seconds` is the span-derived wall-clock duration —
/// the only nondeterministic field.
struct StageRecord {
  std::string name;       ///< stage name, e.g. "verify-pre-layout"
  std::size_t attempt = 0;
  StageStatus status = StageStatus::Passed;
  std::string detail;     ///< failure/skip reason; empty on pass
  EvalStatus evalStatus = EvalStatus::Ok;
  double seconds = 0.0;
};

struct FlowResult {
  bool success = false;
  std::string topology;
  std::vector<double> designPoint;
  circuit::Netlist schematic;           ///< sized testbench netlist
  CellLayoutResult cell;                ///< layout + extraction
  std::vector<VerificationRecord> verifications;
  /// Per-stage execution trail across all attempts, in execution order.
  std::vector<StageRecord> stageRecords;
  std::size_t redesigns = 0;
  std::string failureReason;
  /// Structured companion to failureReason: which evaluation-machinery
  /// failure (if any) ended the last attempt.  Ok both on success and when
  /// the flow failed for design reasons (specs simply not met).
  EvalStatus failureStatus = EvalStatus::Ok;
};

/// Run the complete amplifier flow: select a topology from the built-in
/// library, size it, verify by simulation, lay it out, extract, verify
/// post-layout, and iterate with retargeted specs if the parasitics broke a
/// spec.  Specs use the standard performance names (gain_db, ugf, pm,
/// power, ...).  Thin wrapper over FlowEngine + amplifierStageGraph()
/// (core/flowgraph.hpp).
FlowResult synthesizeAmplifier(const sizing::SpecSet& specs, const circuit::Process& proc,
                               const FlowOptions& opts = {});

/// Serving-scale entry point: run one amplifier flow per spec set, fanned
/// across the shared work-stealing pool.  Deterministic: result i is
/// bit-identical to `synthesizeAmplifier(batch[i], proc,
/// batchItemOptions(opts, i))` at any AMSYN_THREADS, cache on or off
/// (tests/flowgraph_test.cpp proves this differentially).  All designs
/// share the process-wide evaluation cache, so overlapping candidate
/// evaluations across the batch are paid for once.
std::vector<FlowResult> synthesizeBatch(const std::vector<sizing::SpecSet>& batch,
                                        const circuit::Process& proc,
                                        const FlowOptions& opts = {});

/// The options synthesizeBatch hands design `index`: the base options with
/// the seed moved onto the decorrelated per-task RNG stream
/// num::Rng::streamSeed(base.seed, index).  Exposed so callers (and the
/// differential test) can reproduce any batch entry with a sequential
/// synthesizeAmplifier call.
FlowOptions batchItemOptions(const FlowOptions& base, std::size_t index);

/// Measure an amplifier testbench netlist by simulation (shared by the flow
/// and the benches): gain_db, ugf, pm, power.  The testbench descriptor
/// selects the probe node and AC grid; the default reproduces the classic
/// bench.  The optional budget is threaded into every analysis (the flow
/// passes its job's DeadlineBudget so deadline expiry interrupts a
/// measurement at the next Newton-loop cancel point); a budget-stopped
/// measurement comes back infeasible with the budget's exhaustionStatus().
sizing::Performance measureAmplifier(const circuit::Netlist& net,
                                     const circuit::Process& proc,
                                     const AcTestbench& tb = {},
                                     EvalBudget* budget = nullptr);

/// Structured JSON run report for a completed flow: outcome, per-stage
/// verification verdicts and stage records, plus the process-wide
/// metrics-registry snapshot and trace-span aggregate (schema in
/// core/runreport.hpp).
std::string flowRunReportJson(const FlowResult& result);

/// Context-sliced variant: additionally emits "ctx.<counter>" values for
/// every metric delta the given execution context recorded (its metrics
/// slice) — the per-tenant view a multi-job daemon reports next to the
/// process-wide snapshot.  With no slice (the ambient context) the output
/// is byte-identical to the single-argument form.
std::string flowRunReportJson(const FlowResult& result, const ExecutionContext& ctx);

}  // namespace amsyn::core
