// The hierarchical performance-driven design methodology of section 2.1 —
// the loop "most experimental analog CAD systems" run:
//
//   top-down:   topology selection -> specification translation (sizing)
//               -> design verification (simulation)
//   bottom-up:  layout generation -> detailed verification after extraction
//
// with redesign iterations when verification fails at any point, including
// the still-open problem the paper flags in section 3.1: "closing the loop"
// from cell layout back to circuit synthesis.  Here the close is concrete:
// post-layout failures tighten the electrical specs handed to the sizer
// (margin inflation) and the whole flow re-runs.
#pragma once

#include <string>
#include <vector>

#include "core/celllayout.hpp"
#include "core/evalstatus.hpp"
#include "sizing/spec.hpp"
#include "sizing/synth.hpp"
#include "topology/library.hpp"

namespace amsyn::core {

struct FlowOptions {
  double loadCap = 5e-12;
  std::size_t maxRedesigns = 4;   ///< layout->synthesis loop closures
  double marginInflation = 1.30;  ///< spec tightening per redesign
  sizing::SynthesisOptions synthesis;
  CellLayoutOptions layout;
  std::uint64_t seed = 1;
  /// Evaluation-cache capacity (entries) applied to the process-wide
  /// core::cache::EvalCache at flow start; 0 keeps the current/env-derived
  /// setting (AMSYN_EVAL_CACHE_CAPACITY) and SIZE_MAX disables the cache
  /// for this process.  The cache only changes *speed*, never results —
  /// see core/evalcache.hpp for the correctness contract.
  std::size_t evalCacheCapacity = 0;
};

/// Record of one verification: measured performances vs the spec verdict.
struct VerificationRecord {
  std::string stage;  ///< "pre-layout" or "post-layout"
  sizing::Performance measured;
  bool passed = false;
};

struct FlowResult {
  bool success = false;
  std::string topology;
  std::vector<double> designPoint;
  circuit::Netlist schematic;           ///< sized testbench netlist
  CellLayoutResult cell;                ///< layout + extraction
  std::vector<VerificationRecord> verifications;
  std::size_t redesigns = 0;
  std::string failureReason;
  /// Structured companion to failureReason: which evaluation-machinery
  /// failure (if any) ended the last attempt.  Ok both on success and when
  /// the flow failed for design reasons (specs simply not met).
  EvalStatus failureStatus = EvalStatus::Ok;
};

/// Run the complete amplifier flow: select a topology from the built-in
/// library, size it, verify by simulation, lay it out, extract, verify
/// post-layout, and iterate with tightened specs if the parasitics broke a
/// spec.  Specs use the standard performance names (gain_db, ugf, pm,
/// power, ...).
FlowResult synthesizeAmplifier(const sizing::SpecSet& specs, const circuit::Process& proc,
                               const FlowOptions& opts = {});

/// Measure an amplifier testbench netlist by simulation (shared by the flow
/// and the benches): gain_db, ugf, pm, power.
sizing::Performance measureAmplifier(const circuit::Netlist& net,
                                     const circuit::Process& proc);

/// Structured JSON run report for a completed flow: outcome, per-stage
/// verification verdicts, plus the process-wide metrics-registry snapshot
/// and trace-span aggregate (schema in core/runreport.hpp).
std::string flowRunReportJson(const FlowResult& result);

}  // namespace amsyn::core
