// Mixed-signal system assembly (section 3.2; the ACACIA-style top-to-bottom
// prototypes of refs [63],[64]): floorplan the functional blocks with the
// substrate-aware annealer, derive the channel graph, globally route the
// block-level signals under SNR constraints, detail-route each channel with
// the mapper's separation/shield directives, and synthesize the power grid
// with RAIL — one call from block list to assembled chip.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "layout/system/channel.hpp"
#include "layout/system/floorplan.hpp"
#include "layout/system/wren.hpp"
#include "power/rail.hpp"

namespace amsyn::core {

struct SystemSignal {
  std::string name;
  layout::WireClass wireClass = layout::WireClass::Quiet;
  std::vector<std::string> blocks;  ///< connected block names
  double noiseBudget = 0.0;         ///< SNR budget for sensitive signals
};

struct SystemBlockPower {
  double avgCurrent = 5e-3;
  double peakCurrent = 0.0;      ///< > 0 marks a switching (digital) block
  double decouplingCap = 150e-12;
};

struct AssembleOptions {
  layout::FloorplanOptions floorplan;
  layout::WrenOptions global;
  power::RailConstraints railConstraints;
  power::RailOptions rail;
  int powerGridRows = 6;
  int powerGridCols = 6;
  double initialGridWidth = 2e-6;
  std::uint64_t seed = 1;
};

struct AssembleResult {
  layout::Floorplan floorplan;
  layout::ChannelGraph channelGraph;
  layout::WrenResult globalRouting;
  /// Detailed channel results for every channel the global router used,
  /// honoring the constraint mapper's directives.
  std::map<std::size_t, layout::ChannelResult> channels;
  power::GridAnalysis powerBefore;
  power::GridAnalysis powerAfter;
  bool powerConstraintsMet = false;
  bool allSignalsRouted = false;
  bool allSnrBudgetsMet = false;
  bool success = false;
};

/// Assemble a mixed-signal system.  `power` supplies per-block electrical
/// load data (blocks without an entry get SystemBlockPower defaults).
AssembleResult assembleSystem(const std::vector<layout::Block>& blocks,
                              const std::vector<SystemSignal>& signals,
                              const std::map<std::string, SystemBlockPower>& power,
                              const circuit::Process& proc,
                              const AssembleOptions& opts = {});

}  // namespace amsyn::core
