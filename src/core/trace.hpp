// Hierarchical trace spans: AMSYN_SPAN("corner_search") times a scope with
// the monotonic clock, nests by thread (child paths are "parent/child"), and
// records the calling thread's counter deltas over the scope — so a span's
// aggregate answers "how long did this phase take, over how many calls, and
// how much evaluation traffic (LU factorizations, cost evals, ...) did it
// burn".  This is the instrument behind the paper's 4x-10x corner-search
// CPU-overhead claim [31]: the corner-search and nominal-sizing phases carry
// spans, and the run report divides their wall times.
//
// Spans aggregate per (thread, path) into sharded stats merged on demand,
// like core/metrics.hpp counters: opening/closing a span touches only the
// calling thread's shard.  Wall times are genuinely nondeterministic, so
// only span *counts* and *counter deltas* are thread-count-invariant.
//
// Compile-time gate: building with -DAMSYN_TRACE_ENABLED=0 (CMake option
// AMSYN_TRACE=OFF) turns AMSYN_SPAN into a no-op statement with zero code —
// tests/trace_noop_test.cpp proves the disabled form is constexpr-safe.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/metrics.hpp"

namespace amsyn::core::trace {

struct SpanStats {
  std::uint64_t count = 0;    ///< completed spans at this path
  std::uint64_t totalNs = 0;  ///< summed wall time (monotonic clock)
  std::uint64_t minNs = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t maxNs = 0;
  /// Summed per-span deltas of the owning thread's counters, indexed by
  /// metrics::CounterId.  Sized lazily to the registry's counter count.
  std::vector<std::uint64_t> counterDeltas;
};

/// RAII span.  Use through AMSYN_SPAN so the whole mechanism can be compiled
/// out; construct directly only in code that requires tracing to exist.
class Span {
 public:
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  std::string path_;
  std::string parentPath_;
  std::uint64_t startNs_ = 0;
  std::vector<std::uint64_t> before_;  ///< thread counter snapshot at open
};

/// Merge span statistics across all threads, keyed by full path.  Spans
/// still open are not included (stats land at close).
std::map<std::string, SpanStats> collect();

/// Drop all recorded span statistics (quiescent callers only).
void reset();

/// Nanoseconds on the monotonic clock (exposed for tests).
std::uint64_t monotonicNowNs();

}  // namespace amsyn::core::trace

#ifndef AMSYN_TRACE_ENABLED
#define AMSYN_TRACE_ENABLED 1
#endif

#define AMSYN_SPAN_CAT2(a, b) a##b
#define AMSYN_SPAN_CAT(a, b) AMSYN_SPAN_CAT2(a, b)

#if AMSYN_TRACE_ENABLED
#define AMSYN_SPAN(name) \
  ::amsyn::core::trace::Span AMSYN_SPAN_CAT(amsynSpan_, __LINE__)(name)
#else
#define AMSYN_SPAN(name) ((void)0)
#endif
