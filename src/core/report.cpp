#include "core/report.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

namespace amsyn::core {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::addRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream out;
  out << std::setprecision(precision) << v;
  return out.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c)
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << cells[c];
    os << "\n";
  };
  line(headers_);
  std::size_t total = 0;
  for (std::size_t w : width) total += w + 2;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) line(row);
}

std::string Table::toString() const {
  std::ostringstream out;
  print(out);
  return out.str();
}

}  // namespace amsyn::core
