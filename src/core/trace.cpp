#include "core/trace.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>

namespace amsyn::core::trace {

namespace {

/// Per-thread span state: the current nesting path plus this thread's
/// aggregated stats.  The shard mutex is effectively uncontended (locked by
/// the owner at span close and by collect()/reset() when merging).
struct TraceShard {
  std::mutex mutex;
  std::string currentPath;
  std::map<std::string, SpanStats> stats;
};

struct TraceGlobal {
  std::mutex mutex;
  std::vector<std::shared_ptr<TraceShard>> shards;      ///< live threads
  std::map<std::string, SpanStats> retired;             ///< exited threads
};

TraceGlobal& global() {
  static TraceGlobal* g = new TraceGlobal;  // leaked: reachable at thread exit
  return *g;
}

void mergeInto(std::map<std::string, SpanStats>& into,
               const std::map<std::string, SpanStats>& from) {
  for (const auto& [path, s] : from) {
    SpanStats& dst = into[path];
    dst.count += s.count;
    dst.totalNs += s.totalNs;
    dst.minNs = std::min(dst.minNs, s.minNs);
    dst.maxNs = std::max(dst.maxNs, s.maxNs);
    if (dst.counterDeltas.size() < s.counterDeltas.size())
      dst.counterDeltas.resize(s.counterDeltas.size(), 0);
    for (std::size_t i = 0; i < s.counterDeltas.size(); ++i)
      dst.counterDeltas[i] += s.counterDeltas[i];
  }
}

struct ShardHandle {
  std::shared_ptr<TraceShard> shard;
  ~ShardHandle() {
    if (!shard) return;
    TraceGlobal& g = global();
    std::lock_guard<std::mutex> lk(g.mutex);
    mergeInto(g.retired, shard->stats);
    g.shards.erase(std::remove(g.shards.begin(), g.shards.end(), shard), g.shards.end());
  }
};
thread_local ShardHandle tlTrace;

TraceShard& threadShard() {
  if (!tlTrace.shard) {
    auto s = std::make_shared<TraceShard>();
    TraceGlobal& g = global();
    {
      std::lock_guard<std::mutex> lk(g.mutex);
      g.shards.push_back(s);
    }
    tlTrace.shard = std::move(s);
  }
  return *tlTrace.shard;
}

}  // namespace

std::uint64_t monotonicNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Span::Span(const char* name) {
  TraceShard& shard = threadShard();
  parentPath_ = shard.currentPath;
  path_ = parentPath_.empty() ? std::string(name) : parentPath_ + "/" + name;
  shard.currentPath = path_;
  const std::size_t n = metrics::registry().counterCount();
  before_.resize(n);
  metrics::registry().threadCounterSnapshot(before_.data(), n);
  startNs_ = monotonicNowNs();  // last: exclude our own setup from the span
}

Span::~Span() {
  const std::uint64_t durNs = monotonicNowNs() - startNs_;
  // Counters registered *during* the span are snapshotted as zero at open.
  auto& reg = metrics::registry();
  const std::size_t n = reg.counterCount();
  std::vector<std::uint64_t> after(n);
  reg.threadCounterSnapshot(after.data(), n);

  TraceShard& shard = threadShard();
  {
    std::lock_guard<std::mutex> lk(shard.mutex);
    SpanStats& s = shard.stats[path_];
    s.count += 1;
    s.totalNs += durNs;
    s.minNs = std::min(s.minNs, durNs);
    s.maxNs = std::max(s.maxNs, durNs);
    if (s.counterDeltas.size() < n) s.counterDeltas.resize(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t beforeVal = i < before_.size() ? before_[i] : 0;
      // A registry reset mid-span can make `after` run behind the snapshot;
      // saturate rather than wrap.
      if (after[i] > beforeVal) s.counterDeltas[i] += after[i] - beforeVal;
    }
    shard.currentPath = parentPath_;
  }
}

std::map<std::string, SpanStats> collect() {
  TraceGlobal& g = global();
  std::map<std::string, SpanStats> out;
  std::lock_guard<std::mutex> lk(g.mutex);
  mergeInto(out, g.retired);
  for (const auto& shard : g.shards) {
    std::lock_guard<std::mutex> slk(shard->mutex);
    mergeInto(out, shard->stats);
  }
  return out;
}

void reset() {
  TraceGlobal& g = global();
  std::lock_guard<std::mutex> lk(g.mutex);
  g.retired.clear();
  for (const auto& shard : g.shards) {
    std::lock_guard<std::mutex> slk(shard->mutex);
    shard->stats.clear();
  }
}

}  // namespace amsyn::core::trace
