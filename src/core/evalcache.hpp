// Process-wide memoized evaluation cache for candidate designs.
//
// The synthesis loops of the paper are dominated by *redundant* evaluations:
// annealing-based sizing revisits rejected/elite points, genetic topology
// selection re-scores duplicate genomes within and across generations, and
// worst-case corner search re-evaluates the same box vertices across
// cutting-plane rounds and in the final audit (the 4x-10x CPU premium of
// section 2.2 measured in BENCH_corners.json).  This cache short-circuits
// those repeats: a lookup keyed by a canonical 128-bit candidate digest
// returns the full Performance map (failure taxonomy included — the
// "_status" key rides along) instead of re-running the evaluator.
//
// Key design.  A candidate's identity is the digest of
//   (model tag, canonicalized netlist, process parameters, evaluator
//    options, quantized sizing vector, spec-set digest where the payload
//    depends on specs)
// built with Hasher128 below.  Netlist canonicalization
// (circuit/canonical.hpp) hashes devices as a sorted multiset of electrical
// records over node *names*, so device/node declaration order does not
// matter.  Each PerformanceModel contributes its own key via
// PerformanceModel::cacheKey(); models that cannot attest a deterministic,
// self-contained identity return nullopt and are never cached.
//
// Correctness contract (proven by tests/evalcache_test.cpp differential
// suite and the hash property tests in tests/property_test.cpp): with the
// default exact-bit quantum (0), a hit is returned only when the stored
// sizing vector is bit-identical to the query, so cached payloads equal what
// a fresh evaluation would produce and runs with the cache on/off — at any
// AMSYN_THREADS — are bit-identical in everything but speed.  Eviction can
// therefore never change results, only the hit rate.
//
// Concurrency: the table is sharded by digest; each shard holds its own
// mutex + strict LRU list, so concurrently evaluating pool workers rarely
// contend.  Hot-path counters (core.cache.hits/misses/inserts/evictions/
// collisions) live in the metrics registry; byte/entry occupancy is surfaced
// as external counters (core.cache.bytes / core.cache.entries).
//
// Knobs:
//   AMSYN_EVAL_CACHE=0           kill switch (also setEnabled(), and
//                                FlowOptions::evalCache =
//                                EvalCacheOptions::disabled() per-flow)
//   AMSYN_EVAL_CACHE_CAPACITY=N  max entries (default 65536)
//   AMSYN_EVAL_CACHE_QUANTUM=q   relative sizing quantum; 0 (default) =
//                                exact-bit keys.  q > 0 buckets sizing
//                                vectors on a relative grid and returns any
//                                bucket hit — higher hit rate, but waives
//                                the bit-identity guarantee (approximate
//                                mode; never the default).
//
// Layering: like core/evalstatus.hpp this sits below the evaluation
// libraries (amsyn_evalcache depends only on amsyn_metrics + Threads), so
// circuit, sizing, topology, and manufacture may all use it.
#pragma once

#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/evalstatus.hpp"

namespace amsyn::core::cache {

/// 128-bit digest identifying one candidate evaluation.  Two lanes of
/// avalanche mixing: strong enough that accidental collisions are
/// negligible for cache purposes (and the exact-x compare in EvalCache
/// additionally guards the sizing-vector component, the only part that
/// varies millions of times per run).
struct Digest128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const Digest128& a, const Digest128& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
  friend bool operator!=(const Digest128& a, const Digest128& b) { return !(a == b); }
  friend bool operator<(const Digest128& a, const Digest128& b) {
    return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
  }
};

/// Incremental 128-bit hasher.  Header-only and allocation-free so the
/// circuit library can canonicalize netlists without linking the cache.
/// Deterministic across threads, runs, and platforms with the same
/// endianness and IEEE-754 doubles (the only configuration amsyn supports).
class Hasher128 {
 public:
  Hasher128& mix(std::uint64_t v) {
    h1_ = mix64(h1_ ^ v);
    h2_ = mix64(h2_ + v * 0x9e3779b97f4a7c15ULL + 0x632be59bd9b4e019ULL);
    return *this;
  }

  /// Canonical double bits: -0.0 hashes as +0.0 and every NaN hashes as one
  /// quiet-NaN payload, so semantically equal values share a digest.
  Hasher128& mixDouble(double v) { return mix(canonicalBits(v)); }

  /// Relative quantization on the mantissa grid: quantum <= 0 hashes the
  /// exact canonical bits; quantum q > 0 hashes (sign, exponent,
  /// round(mantissa / q)), so values whose relative difference exceeds ~2q
  /// are guaranteed distinct buckets and values on the same grid point
  /// collapse (tests/property_test.cpp sweeps both directions).
  Hasher128& mixQuantized(double v, double quantum);

  Hasher128& mixString(std::string_view s) {
    mix(s.size());
    std::uint64_t chunk = 0;
    std::size_t n = 0;
    for (unsigned char c : s) {
      chunk |= static_cast<std::uint64_t>(c) << (8 * n);
      if (++n == 8) {
        mix(chunk);
        chunk = 0;
        n = 0;
      }
    }
    if (n != 0) mix(chunk);
    return *this;
  }

  Hasher128& mixDoubles(const std::vector<double>& v) {
    mix(v.size());
    for (double d : v) mixDouble(d);
    return *this;
  }

  Hasher128& mixQuantizedDoubles(const std::vector<double>& v, double quantum) {
    mix(v.size());
    for (double d : v) mixQuantized(d, quantum);
    return *this;
  }

  /// Fold another digest in (e.g. a sub-model key or a canonical netlist
  /// digest becoming one component of a composite candidate key).
  Hasher128& mixDigest(const Digest128& d) { return mix(d.hi), mix(d.lo); }

  Digest128 digest() const {
    // Final avalanche with cross-lane diffusion so trailing mixes affect
    // both words.
    Digest128 d;
    d.hi = mix64(h1_ + 0x8bb84b93962eacc9ULL * h2_);
    d.lo = mix64(h2_ ^ 0x2f9be6cc79d86476ULL ^ h1_);
    return d;
  }

  static std::uint64_t canonicalBits(double v) {
    if (v != v) return 0x7ff8000000000000ULL;  // all NaNs alias
    if (v == 0.0) v = 0.0;                     // -0.0 aliases +0.0
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
  }

 private:
  static constexpr std::uint64_t mix64(std::uint64_t z) {
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::uint64_t h1_ = 0x6a09e667f3bcc908ULL;
  std::uint64_t h2_ = 0xbb67ae8584caa73bULL;
};

/// One cached evaluation: the full Performance map (including the
/// "_infeasible" / "_status" taxonomy keys) plus the structured status for
/// consumers that do not parse the map.
struct CachedEval {
  std::map<std::string, double> performance;
  EvalStatus status = EvalStatus::Ok;
};

/// Point-in-time occupancy + traffic totals (process lifetime; the metrics
/// registry carries the same numbers under core.cache.*).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;
  std::uint64_t evictions = 0;
  std::uint64_t collisions = 0;  ///< digest matched but exact x differed
  std::uint64_t bypasses = 0;    ///< cheap evaluations that skipped the cache
  std::uint64_t entries = 0;
  std::uint64_t bytes = 0;  ///< approximate payload bytes resident
};

class EvalCache {
 public:
  /// The process-wide cache (leaked on purpose, like the metrics registry).
  /// Production code resolves it through core::ExecutionContext (the
  /// context lint bans new direct instance() calls); the shared instance
  /// seeds its policy from the AMSYN_EVAL_CACHE* knobs.
  static EvalCache& instance();

  /// A private cache for context isolation (per-tenant caching in the
  /// synthesis-service scenario): its own LRU state and entry/byte gauges,
  /// built-in defaults (enabled, 2^16 entries, exact-bit keys) rather than
  /// env-derived ones, and no registry externals — "core.cache.entries"/
  /// "core.cache.bytes" keep naming the shared instance.  Hit/miss counter
  /// traffic still lands in the shared process counters (they are real
  /// events); per-instance occupancy is read via stats().entries/bytes.
  static std::unique_ptr<EvalCache> createIsolated();

  ~EvalCache();

  /// Enabled unless AMSYN_EVAL_CACHE is "0"/"off"/"false" or setEnabled
  /// overrode it.
  bool enabled() const;
  void setEnabled(bool on);

  /// Max resident entries across all shards (evicting strict per-shard LRU
  /// beyond it).  0 restores the default / AMSYN_EVAL_CACHE_CAPACITY.
  void setCapacity(std::size_t maxEntries);
  std::size_t capacity() const;

  /// Relative sizing-vector quantum used by key builders (see file
  /// comment); 0 = exact-bit keys.
  double quantum() const;
  void setQuantum(double q);

  /// Look up `key`; on a hit copies the payload into `out` and returns
  /// true.  With the exact-bit quantum, a digest match whose stored sizing
  /// vector is not bit-identical to `exactX` counts as a collision miss —
  /// this is what makes cached results provably equal to fresh ones.
  bool lookup(const Digest128& key, const std::vector<double>& exactX, CachedEval& out);

  /// Insert (or refresh) an entry.  Idempotent under races: the first
  /// payload for a key sticks, which is safe because any two writers
  /// computed it from the same deterministic evaluation.
  void insert(const Digest128& key, const std::vector<double>& exactX, CachedEval value);

  /// Tally one deliberate cache bypass (core.cache.bypasses): an evaluation
  /// cheaper than its own digest — safeEvaluate skips both the lookup and
  /// the insert for models attesting EvalCost::Cheap, and records the
  /// decision here so hit-rate math stays honest.
  void noteBypass();

  /// Drop every entry (stats/counters keep their lifetime totals).
  void clear();

  CacheStats stats() const;

  struct Impl;

 private:
  /// `shared` selects env-seeded policy + registry externals (the process
  /// instance) vs. built-in defaults and no externals (isolated instances).
  explicit EvalCache(bool shared);
  Impl& impl() const { return *impl_; }
  std::unique_ptr<Impl> impl_;
};

}  // namespace amsyn::core::cache
