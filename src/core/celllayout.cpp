#include "core/celllayout.hpp"

#include <algorithm>
#include <set>

#include "layout/cell/modgen.hpp"
#include "layout/cell/stack.hpp"

namespace amsyn::core {

using circuit::Device;
using circuit::DeviceType;

namespace {

/// Is this device physical layout material (vs. a testbench artifact)?
bool isPhysical(const Device& d) {
  switch (d.type) {
    case DeviceType::Mos:
      return true;
    case DeviceType::Resistor:
      return d.value < 5e5;   // >= 0.5 Mohm: bias helper / feedback element
    case DeviceType::Capacitor:
      return d.value < 1e-9;  // >= 1 nF: testbench decoupling
    default:
      return false;
  }
}

}  // namespace

CellLayoutResult layoutCellGeometry(const circuit::Netlist& net,
                                    const circuit::Process& proc,
                                    const CellLayoutOptions& opts) {
  CellLayoutResult result;
  result.matching = extract::generateMatchingConstraints(net);

  // --- build a physical-only netlist view for stacking ---
  circuit::Netlist physical;
  for (const auto& d : net.devices()) {
    if (!isPhysical(d)) continue;
    switch (d.type) {
      case DeviceType::Mos:
        physical.addMos(d.name, net.nodeName(d.nodes[0]), net.nodeName(d.nodes[1]),
                        net.nodeName(d.nodes[2]), net.nodeName(d.nodes[3]), d.mos.type,
                        d.mos.w, d.mos.l, d.mos.m);
        break;
      case DeviceType::Resistor:
        physical.addResistor(d.name, net.nodeName(d.nodes[0]), net.nodeName(d.nodes[1]),
                             d.value);
        break;
      case DeviceType::Capacitor:
        physical.addCapacitor(d.name, net.nodeName(d.nodes[0]), net.nodeName(d.nodes[1]),
                              d.value);
        break;
      default:
        break;
    }
  }

  // --- components: stacks + singles + passives ---
  std::vector<layout::PlacementComponent> components;
  std::set<std::string> stacked;

  if (opts.useStacking) {
    std::size_t stackId = 0;
    for (const auto& graph : layout::buildDiffusionGraphs(physical)) {
      const auto stacking = layout::greedyStacking(graph);
      for (const auto& stack : stacking.stacks) {
        if (stack.elements.size() < 2) continue;  // singles handled below
        std::vector<layout::StackedDevice> devs;
        for (const auto& el : stack.elements) {
          const auto& e = graph.edges[el.edge];
          layout::StackedDevice sd;
          sd.name = e.device;
          sd.mos = e.mos;
          sd.leftNet = graph.nets[el.flipped ? e.b : e.a];
          sd.gateNet = e.gateNet;
          sd.rightNet = graph.nets[el.flipped ? e.a : e.b];
          sd.bulkNet = e.bulkNet;
          devs.push_back(std::move(sd));
          stacked.insert(e.device);
        }
        layout::PlacementComponent comp;
        comp.name = "stack" + std::to_string(stackId++);
        comp.variants = {layout::generateMosStack(comp.name, devs, proc)};
        components.push_back(std::move(comp));
        result.stackedDevices += devs.size();
      }
    }
  }

  // Symmetric pairs among non-stacked devices.
  std::map<std::string, std::string> peerOf;
  for (const auto& mc : result.matching) {
    if (mc.kind != extract::MatchKind::DifferentialPair) continue;
    if (stacked.count(mc.deviceA) || stacked.count(mc.deviceB)) continue;
    peerOf[mc.deviceA] = mc.deviceB;
    peerOf[mc.deviceB] = mc.deviceA;
  }

  for (const auto& d : physical.devices()) {
    if (stacked.count(d.name)) continue;
    layout::PlacementComponent comp;
    comp.name = d.name;
    switch (d.type) {
      case DeviceType::Mos: {
        const std::string dn = physical.nodeName(d.nodes[0]);
        const std::string gn = physical.nodeName(d.nodes[1]);
        const std::string sn = physical.nodeName(d.nodes[2]);
        const std::string bn = physical.nodeName(d.nodes[3]);
        comp.variants.push_back(layout::generateMos(d.name, d.mos, dn, gn, sn, bn, proc));
        // Folding variants for wide devices (KOAN's dynamic-fold move).
        const double wLambda = d.mos.w * d.mos.m / proc.lambda;
        layout::MosGenOptions fold;
        if (wLambda >= 40) {
          fold.fingers = 2;
          comp.variants.push_back(
              layout::generateMos(d.name, d.mos, dn, gn, sn, bn, proc, fold));
        }
        if (wLambda >= 120) {
          fold.fingers = 4;
          comp.variants.push_back(
              layout::generateMos(d.name, d.mos, dn, gn, sn, bn, proc, fold));
        }
        if (auto it = peerOf.find(d.name); it != peerOf.end()) comp.symmetryPeer = it->second;
        break;
      }
      case DeviceType::Resistor:
        comp.variants.push_back(layout::generateResistor(
            d.name, d.value, physical.nodeName(d.nodes[0]), physical.nodeName(d.nodes[1]),
            proc));
        break;
      case DeviceType::Capacitor:
        comp.variants.push_back(layout::generateCapacitor(
            d.name, d.value, physical.nodeName(d.nodes[0]), physical.nodeName(d.nodes[1]),
            proc));
        break;
      default:
        continue;
    }
    components.push_back(std::move(comp));
  }

  if (components.empty()) return result;  // nothing physical to lay out

  // --- placement + routing, with a deterministic-row fallback when the
  // annealed packing proves unroutable (KOAN/ANAGRAM ran exactly this kind
  // of retry loop between its placer and router) ---
  auto placeAndRoute = [&](bool annealed) {
    layout::PlacerOptions popts = opts.placer;
    popts.seed = opts.seed;
    result.placement = annealed ? layout::placeCells(components, popts)
                                : layout::rowPlacement(components, popts);

    std::map<std::string, std::size_t> pinCount;
    for (const auto& inst : result.placement.instances)
      for (const auto& pin : inst.transformedPins()) ++pinCount[pin.name];

    std::set<std::string> skip(opts.skipNets.begin(), opts.skipNets.end());
    std::map<std::string, layout::RouteNet> netPlan;
    for (const auto& [name, count] : pinCount) {
      if (count < 2 || name.empty() || skip.count(name)) continue;
      layout::RouteNet rn;
      rn.name = name;
      netPlan[name] = rn;
    }
    for (const auto& ov : opts.netOverrides) {
      if (auto it = netPlan.find(ov.name); it != netPlan.end()) it->second = ov;
    }
    std::vector<layout::RouteNet> routeNets;
    routeNets.reserve(netPlan.size());
    for (auto& [name, rn] : netPlan) {
      (void)name;
      routeNets.push_back(rn);
    }

    result.routing =
        layout::routeCells(result.placement.instances, routeNets, proc, opts.router);
    result.layout = result.routing.layout;
    return result.placement.overlapFree && result.routing.allRouted;
  };

  bool ok = placeAndRoute(opts.annealPlacement);
  if (!ok && opts.annealPlacement) {
    ok = placeAndRoute(false);
    result.usedRowFallback = true;
  }
  (void)ok;

  // The instances point into the component masters; hand ownership to the
  // result so extraction (possibly a separate stage) sees live geometry.
  // Vector move steals the buffers, so the master addresses are unchanged.
  result.components = std::move(components);

  const auto bb = result.layout.boundingBox();
  result.areaLambda2 =
      static_cast<double>(bb.width()) / 4.0 * static_cast<double>(bb.height()) / 4.0;
  result.wirelengthLambda = result.routing.totalLengthLambda;
  result.success = result.placement.overlapFree && result.routing.allRouted;
  return result;
}

void extractCell(const circuit::Netlist& net, const circuit::Process& proc,
                 CellLayoutResult& result) {
  if (result.placement.instances.empty()) return;  // nothing was laid out
  result.parasitics = extract::extractParasitics(result.layout, proc);
  result.annotated = extract::backAnnotate(net, result.parasitics);
}

CellLayoutResult layoutCell(const circuit::Netlist& net, const circuit::Process& proc,
                            const CellLayoutOptions& opts) {
  auto result = layoutCellGeometry(net, proc, opts);
  extractCell(net, proc, result);
  return result;
}

}  // namespace amsyn::core
