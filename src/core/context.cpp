#include "core/context.hpp"

#include <cctype>
#include <string>

#include "core/envknobs.hpp"

namespace amsyn::core {

namespace {

SolverKind parseSolverKind(const std::string& s) {
  std::string lower;
  lower.reserve(s.size());
  for (char c : s)
    lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  if (lower == "dense") return SolverKind::Dense;
  if (lower == "sparse") return SolverKind::Sparse;
  return SolverKind::Auto;  // "auto", unset, and unrecognized values
}

/// The calling thread's installed context (innermost ContextScope).
thread_local ExecutionContext* tlCurrent = nullptr;

}  // namespace

ContextConfig ContextConfig::fromEnv() {
  ContextConfig cfg;
  cfg.threads = envknobs::threads();
  cfg.solver = parseSolverKind(envknobs::solver());
  cfg.evalCacheEnabled = envknobs::evalCacheEnabled();
  cfg.evalCacheCapacity = envknobs::evalCacheCapacity();
  cfg.evalCacheQuantum = envknobs::evalCacheQuantum();
  const int m = envknobs::surrogateModeIndex();
  cfg.surrogateMode = m == 2   ? surrogate::Mode::Pruning
                      : m == 1 ? surrogate::Mode::Ordering
                               : surrogate::Mode::Off;
  cfg.jobDeadlineMs = envknobs::jobDeadlineMs();
  cfg.topologySpace = envknobs::topologySpaceIndex() == 1
                          ? TopologySpaceKind::Generated
                          : TopologySpaceKind::Legacy;
  return cfg;
}

ExecutionContext::ExecutionContext(ContextConfig cfg, ContextIsolation isolation)
    : ExecutionContext(std::move(cfg), isolation, /*parent=*/nullptr,
                       /*isAmbient=*/false) {}

ExecutionContext::ExecutionContext(ContextConfig cfg, ContextIsolation isolation,
                                   ExecutionContext* parent, bool isAmbient)
    : config_(std::move(cfg)), parent_(parent) {
  solver_.store(config_.solver, std::memory_order_relaxed);

  if (isolation.evalCache) {
    ownedEvalCache_ = cache::EvalCache::createIsolated();
    ownedEvalCache_->setEnabled(config_.evalCacheEnabled);
    if (config_.evalCacheCapacity > 0)
      ownedEvalCache_->setCapacity(config_.evalCacheCapacity);
    ownedEvalCache_->setQuantum(config_.evalCacheQuantum);
    evalCache_ = ownedEvalCache_.get();
  } else if (parent_) {
    evalCache_ = &parent_->evalCache();
  } else {
    // Shared handle: the singleton already seeded its policy from the same
    // env parsers this config came through, and explicit contexts must not
    // re-apply it — a test (or tenant) that disabled the shared cache would
    // otherwise have it silently re-enabled by the next context creation.
    evalCache_ = &cache::EvalCache::instance();
  }

  if (isolation.surrogate) {
    ownedSurrogate_ = surrogate::Store::createIsolated();
    ownedSurrogate_->setMode(config_.surrogateMode);
    surrogateStore_ = ownedSurrogate_.get();
  } else if (parent_) {
    surrogateStore_ = &parent_->surrogateStore();
  } else {
    surrogateStore_ = &surrogate::Store::instance();
  }

  if (parent_) solver_.store(parent_->solverKind(), std::memory_order_relaxed);

  // Every context except the ambient one records a slice; the ambient hot
  // path stays a thread-local null check in Registry::add.
  if (!isAmbient) {
    slice_ = std::make_unique<metrics::ContextSlice>();
    slice_->setParent(parent_ ? parent_->metricsSlice() : nullptr);
  }
}

ExecutionContext::~ExecutionContext() = default;

ExecutionContext& ExecutionContext::ambient() {
  // Leaked, like the registry: reachable from thread-exit hooks and static
  // destructors.  Construction is thread-safe (magic static) and snapshots
  // the environment exactly once per process.
  static ExecutionContext* ctx = new ExecutionContext(
      ContextConfig::fromEnv(), ContextIsolation{}, /*parent=*/nullptr,
      /*isAmbient=*/true);
  return *ctx;
}

ExecutionContext& ExecutionContext::current() {
  return tlCurrent ? *tlCurrent : ambient();
}

ExecutionContext* ExecutionContext::scoped() { return tlCurrent; }

std::unique_ptr<ExecutionContext> ExecutionContext::makeChild() {
  return std::unique_ptr<ExecutionContext>(new ExecutionContext(
      config_, ContextIsolation{}, /*parent=*/this, /*isAmbient=*/false));
}

const FaultScheduleState* ExecutionContext::armedFaultSchedule() const {
  for (const ExecutionContext* c = this; c; c = c->parent_)
    if (c->faultSchedule_.armed.load(std::memory_order_acquire))
      return &c->faultSchedule_;
  return nullptr;
}

std::map<std::string, std::uint64_t> ExecutionContext::sliceCounters() const {
  return slice_ ? slice_->counters() : std::map<std::string, std::uint64_t>{};
}

ContextScope::ContextScope(ExecutionContext& ctx)
    : prev_(tlCurrent), sliceScope_(ctx.metricsSlice()) {
  tlCurrent = &ctx;
}

ContextScope::~ContextScope() { tlCurrent = prev_; }

}  // namespace amsyn::core
