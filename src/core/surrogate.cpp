#include "core/surrogate.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <numeric>
#include <unordered_map>

#include "core/envknobs.hpp"
#include "core/metrics.hpp"

namespace amsyn::core::surrogate {

namespace {

struct DigestHash {
  std::size_t operator()(const cache::Digest128& d) const noexcept {
    return static_cast<std::size_t>(d.hi ^ (d.lo * 0x9e3779b97f4a7c15ULL));
  }
};

bool allFinite(const std::vector<double>& v) {
  for (double x : v)
    if (!std::isfinite(x)) return false;
  return true;
}

}  // namespace

RidgeModel::RidgeModel(std::size_t dim, double lambda)
    : dim_(dim), lambda_(lambda > 0.0 ? lambda : kDefaultLambda),
      p_(dim * dim, 0.0) {
  // No data yet: P = (lambda I)^-1.
  for (std::size_t i = 0; i < dim_; ++i) p_[i * dim_ + i] = 1.0 / lambda_;
}

void RidgeModel::refresh(Head& h) {
  if (!h.dirty) return;
  h.w.assign(dim_, 0.0);
  for (std::size_t i = 0; i < dim_; ++i) {
    double acc = 0.0;
    const double* row = &p_[i * dim_];
    for (std::size_t j = 0; j < dim_; ++j) acc += row[j] * h.b[j];
    h.w[i] = acc;
  }
  h.dirty = false;
}

bool RidgeModel::observe(const std::vector<double>& phi,
                         const std::map<std::string, double>& heads) {
  if (phi.size() != dim_ || heads.empty() || !allFinite(phi)) return false;
  for (const auto& [name, y] : heads)
    if (!std::isfinite(y)) return false;
  if (heads_.empty()) {
    for (const auto& [name, y] : heads) {
      (void)y;
      Head h;
      h.b.assign(dim_, 0.0);
      heads_.emplace(name, std::move(h));
    }
  } else {
    // Head-set pinning: every observation must carry exactly the pinned
    // names, so each head's weights stay an exact ridge solve over the full
    // design matrix (a head observed on a subset would silently regress
    // missing targets toward zero).
    if (heads.size() != heads_.size()) return false;
    auto it = heads_.begin();
    for (const auto& [name, y] : heads) {
      (void)y;
      if (it == heads_.end() || it->first != name) return false;
      ++it;
    }
  }

  // Prequential calibration: score the incoming pair with the *current*
  // weights before folding it in.  Only once the fit is determined (count
  // >= dim) — earlier residuals measure the prior, not the model.
  if (count_ >= dim_) {
    for (auto& [name, h] : heads_) {
      refresh(h);
      double pred = 0.0;
      for (std::size_t j = 0; j < dim_; ++j) pred += h.w[j] * phi[j];
      const double r = heads.at(name) - pred;
      h.residualSumSq += r * r;
      ++h.residuals;
    }
  }

  // Sherman–Morrison: P -= (P phi)(P phi)' / (1 + phi' P phi).  Written to
  // preserve symmetry exactly (each off-diagonal pair assigned once).
  std::vector<double> k(dim_, 0.0);
  double denom = 1.0;
  for (std::size_t i = 0; i < dim_; ++i) {
    double acc = 0.0;
    const double* row = &p_[i * dim_];
    for (std::size_t j = 0; j < dim_; ++j) acc += row[j] * phi[j];
    k[i] = acc;
    denom += acc * phi[i];
  }
  for (std::size_t i = 0; i < dim_; ++i) {
    for (std::size_t j = i; j < dim_; ++j) {
      const double v = p_[i * dim_ + j] - k[i] * k[j] / denom;
      p_[i * dim_ + j] = v;
      p_[j * dim_ + i] = v;
    }
  }

  for (auto& [name, h] : heads_) {
    const double y = heads.at(name);
    for (std::size_t j = 0; j < dim_; ++j) h.b[j] += phi[j] * y;
    h.dirty = true;
  }
  ++count_;
  return true;
}

std::optional<Prediction> RidgeModel::predict(const std::vector<double>& phi,
                                              const std::string& head) {
  if (phi.size() != dim_ || count_ < dim_ || !allFinite(phi)) return std::nullopt;
  auto it = heads_.find(head);
  if (it == heads_.end()) return std::nullopt;
  Head& h = it->second;
  refresh(h);
  double mean = 0.0;
  double q = 0.0;  // phi' P phi
  for (std::size_t i = 0; i < dim_; ++i) {
    mean += h.w[i] * phi[i];
    double acc = 0.0;
    const double* row = &p_[i * dim_];
    for (std::size_t j = 0; j < dim_; ++j) acc += row[j] * phi[j];
    q += acc * phi[i];
  }
  Prediction out;
  out.mean = mean;
  const double s2 =
      h.residuals > 0 ? h.residualSumSq / static_cast<double>(h.residuals) : 0.0;
  out.sigma = std::sqrt(std::max(0.0, s2 * (1.0 + std::max(0.0, q))));
  out.calibrated = h.residuals >= kMinCalibration;
  if (!std::isfinite(out.mean) || !std::isfinite(out.sigma)) return std::nullopt;
  return out;
}

std::vector<double> RidgeModel::weights(const std::string& head) {
  auto it = heads_.find(head);
  if (it == heads_.end()) return {};
  refresh(it->second);
  return it->second.w;
}

struct Store::Impl {
  struct ClassEntry {
    std::mutex mutex;
    std::unique_ptr<RidgeModel> model;
  };

  std::atomic<Mode> mode{Mode::Off};
  mutable std::mutex classesMutex;
  std::unordered_map<cache::Digest128, std::unique_ptr<ClassEntry>, DigestHash>
      classes;
  std::atomic<std::uint64_t> classCount{0};

  static constexpr std::size_t kMaxPruneLog = 4096;
  mutable std::mutex pruneMutex;
  std::vector<PruneRecord> prunes;

  metrics::CounterId cObservations, cPredictions, cDeclined, cOrderedBatches,
      cPruned;

  explicit Impl(bool shared) {
    if (shared) {
      // The process-wide store seeds its mode from AMSYN_SURROGATE via the
      // shared envknobs parser; isolated stores start Off and are configured
      // by their owning ExecutionContext.
      const int m = envknobs::surrogateModeIndex();
      mode.store(m == 2 ? Mode::Pruning : m == 1 ? Mode::Ordering : Mode::Off,
                 std::memory_order_relaxed);
    }
    auto& reg = metrics::registry();
    // Registered eagerly (not at first observation) so run-report counter
    // key-sets are identical with the surrogate off, ordering, and pruning —
    // report_schema_test compares schemas across modes.
    cObservations = reg.counter("core.surrogate.observations");
    cPredictions = reg.counter("core.surrogate.predictions");
    cDeclined = reg.counter("core.surrogate.declined");
    cOrderedBatches = reg.counter("core.surrogate.ordered_batches");
    cPruned = reg.counter("core.surrogate.pruned");
    if (shared) {
      // Only the shared store backs the process-wide class gauge:
      // registerExternal replaces readers by name, so an isolated store
      // registering here would hijack the report field.
      reg.registerExternal("core.surrogate.classes", [this] {
        return classCount.load(std::memory_order_relaxed);
      });
    }
  }

  ClassEntry& entryFor(const cache::Digest128& key, bool& created) {
    std::lock_guard<std::mutex> lock(classesMutex);
    auto it = classes.find(key);
    if (it == classes.end()) {
      it = classes.emplace(key, std::make_unique<ClassEntry>()).first;
      classCount.fetch_add(1, std::memory_order_relaxed);
      created = true;
    }
    return *it->second;
  }

  ClassEntry* findEntry(const cache::Digest128& key) {
    std::lock_guard<std::mutex> lock(classesMutex);
    auto it = classes.find(key);
    return it == classes.end() ? nullptr : it->second.get();
  }
};

Store::Store(bool shared) : impl_(std::make_unique<Impl>(shared)) {}

Store::~Store() = default;

Store& Store::instance() {
  static Store* leaked = new Store(/*shared=*/true);
  return *leaked;
}

std::unique_ptr<Store> Store::createIsolated() {
  return std::unique_ptr<Store>(new Store(/*shared=*/false));
}

Mode Store::mode() const { return impl().mode.load(std::memory_order_relaxed); }
void Store::setMode(Mode m) { impl().mode.store(m, std::memory_order_relaxed); }

void Store::observe(const Candidate& c, const std::map<std::string, double>& heads) {
  Impl& im = impl();
  if (c.features.empty() || heads.empty()) {
    metrics::add(im.cDeclined);
    return;
  }
  bool created = false;
  Impl::ClassEntry& entry = im.entryFor(c.classKey, created);
  std::lock_guard<std::mutex> lock(entry.mutex);
  if (!entry.model)
    entry.model = std::make_unique<RidgeModel>(c.features.size());
  if (entry.model->dimension() != c.features.size() ||
      !entry.model->observe(c.features, heads)) {
    metrics::add(im.cDeclined);
    return;
  }
  metrics::add(im.cObservations);
}

std::optional<Prediction> Store::predict(const Candidate& c,
                                         const std::string& head) {
  Impl& im = impl();
  Impl::ClassEntry* entry = im.findEntry(c.classKey);
  if (!entry) return std::nullopt;
  std::lock_guard<std::mutex> lock(entry->mutex);
  if (!entry->model) return std::nullopt;
  auto pred = entry->model->predict(c.features, head);
  if (pred) metrics::add(im.cPredictions);
  return pred;
}

std::vector<std::optional<Prediction>> Store::predictMany(
    const Candidate& c, const std::vector<std::string>& heads) {
  Impl& im = impl();
  std::vector<std::optional<Prediction>> out(heads.size());
  Impl::ClassEntry* entry = im.findEntry(c.classKey);
  if (!entry) return out;
  std::lock_guard<std::mutex> lock(entry->mutex);
  if (!entry->model) return out;
  for (std::size_t i = 0; i < heads.size(); ++i) {
    out[i] = entry->model->predict(c.features, heads[i]);
    if (out[i]) metrics::add(im.cPredictions);
  }
  return out;
}

void Store::noteOrderedBatch() { metrics::add(impl().cOrderedBatches); }

void Store::recordPrune(PruneRecord r) {
  Impl& im = impl();
  metrics::add(im.cPruned);
  std::lock_guard<std::mutex> lock(im.pruneMutex);
  // Bounded: the counter keeps the true total; the log keeps the first N
  // for offline audit (tests re-evaluate every logged record).
  if (im.prunes.size() < Impl::kMaxPruneLog) im.prunes.push_back(std::move(r));
}

std::vector<Store::PruneRecord> Store::pruneLog() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.pruneMutex);
  return im.prunes;
}

Store::SurrogateStats Store::stats() const {
  Impl& im = impl();
  auto& reg = metrics::registry();
  SurrogateStats s;
  s.observations = reg.total(im.cObservations);
  s.predictions = reg.total(im.cPredictions);
  s.declined = reg.total(im.cDeclined);
  s.orderedBatches = reg.total(im.cOrderedBatches);
  s.pruned = reg.total(im.cPruned);
  s.classes = im.classCount.load(std::memory_order_relaxed);
  return s;
}

void Store::clear() {
  Impl& im = impl();
  {
    std::lock_guard<std::mutex> lock(im.classesMutex);
    im.classes.clear();
    im.classCount.store(0, std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> lock(im.pruneMutex);
  im.prunes.clear();
}

std::vector<std::size_t> orderByScore(
    const std::vector<std::optional<double>>& scores) {
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     const bool ha = scores[a].has_value();
                     const bool hb = scores[b].has_value();
                     if (ha != hb) return ha;  // scored before unscored
                     if (!ha) return false;    // unscored: keep original order
                     return *scores[a] < *scores[b];
                   });
  return order;
}

}  // namespace amsyn::core::surrogate
