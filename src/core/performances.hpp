// The canonical table of electrical performances the amplifier flow's
// verification testbench measures (gain_db, ugf, pm, power).  One table
// feeds three consumers that each used to carry their own hard-coded list:
// spec filtering (which constraint specs the simulator can judge), the
// knowledge-plan input mapping (spec.* context keys), and run-report
// serialization (which measurements a VerificationRecord prints).
//
// Header-only on purpose: the knowledge library sits below amsyn_core in
// the link order but still maps specs onto plan inputs, so the table must
// be includable without linking core (the core/evalstatus.hpp pattern).
#pragma once

#include <string>
#include <vector>

namespace amsyn::core {

struct ElectricalPerformance {
  const char* name;       ///< simulator measurement / spec performance name
  const char* planInput;  ///< knowledge-plan context key fed from the bound
  /// True when only an upper-bound (LessEqual) constraint maps onto the
  /// plan input — power budgets feed spec.power_max; a lower bound on
  /// power would be meaningless to a plan.
  bool upperBoundOnly;
};

/// Every performance the amplifier verification stage measures, with its
/// plan-input mapping.  Order is the canonical serialization order.
inline const std::vector<ElectricalPerformance>& electricalPerformanceTable() {
  static const std::vector<ElectricalPerformance> table = {
      {"gain_db", "spec.gain_db", false},
      {"ugf", "spec.ugf", false},
      {"pm", "spec.pm", false},
      {"power", "spec.power_max", true},
  };
  return table;
}

/// Names only, in table order (the common consumer shape).
inline std::vector<std::string> electricalPerformances() {
  std::vector<std::string> names;
  names.reserve(electricalPerformanceTable().size());
  for (const auto& p : electricalPerformanceTable()) names.emplace_back(p.name);
  return names;
}

/// Is `name` a simulator-judged electrical performance?
inline bool isElectricalPerformance(const std::string& name) {
  for (const auto& p : electricalPerformanceTable())
    if (name == p.name) return true;
  return false;
}

}  // namespace amsyn::core
