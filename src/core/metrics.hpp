// Process-wide metrics registry: named counters, gauges, and histograms
// behind every observability number in amsyn (LU factorization traffic,
// annealing move totals, maze-router expansions, failure-reason tallies).
//
// Design: counters and histograms are sharded per thread.  Registration
// (name -> id) is the cold path and takes a mutex; the hot path — add() /
// record() on an id — touches only the calling thread's shard with relaxed
// atomics, so concurrently evaluating pool workers never contend on a
// counter cacheline.  Aggregation walks every live shard plus the retired
// totals of exited threads, which is how worker-thread increments reach the
// caller: totals are correct and thread-count-invariant because integer sums
// are order-free (this is the fix for the PR-1 thread-local LU counters,
// which were silently dropped whenever an analysis ran on a pool thread).
//
// Layering: this library sits at the very bottom (Threads only), below
// amsyn_sim and amsyn_numeric, mirroring core/evalstatus.hpp.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace amsyn::core::metrics {

/// Fixed shard capacities: a shard is a flat array of atomics, so ids are
/// stable for the process lifetime and slots are never reallocated under a
/// concurrent reader.  Exceeding these is a registration error (cold path)
/// that names the offending metric.  Headroom is deliberate: per-context
/// slices (ContextSlice) mirror the counter array, so growing it later
/// means touching every slice too.
inline constexpr std::size_t kMaxCounters = 320;
inline constexpr std::size_t kMaxHistograms = 64;

struct CounterId {
  std::uint32_t idx = 0;
};
struct HistogramId {
  std::uint32_t idx = 0;
};

struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
};

/// Point-in-time aggregate over all shards, retired threads, and external
/// (callback-backed) counters.  Keys are metric names; maps keep the output
/// order deterministic.
struct Snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

class Registry {
 public:
  /// The process-wide registry.  Never destroyed (leaked on purpose), so
  /// thread-exit hooks and static destructors can always reach it.
  static Registry& instance();

  /// Register (or look up) a counter by name.  Idempotent; cold path.
  CounterId counter(const std::string& name);
  HistogramId histogram(const std::string& name);

  /// Register a read-only external counter (e.g. a legacy process-global
  /// atomic) surfaced through snapshots under `name`.  Idempotent by name;
  /// the reader must be callable from any thread.  External counters are the
  /// registry's bridge for stats whose storage cannot move (tests poke the
  /// sim::FailureStats atomics directly), and they are not zeroed by reset().
  void registerExternal(const std::string& name, std::function<std::uint64_t()> reader);

  /// Gauges are last-write-wins process globals (set rarely; mutex).
  void setGauge(const std::string& name, double value);

  // --- hot path (lock-free: calling thread's shard, relaxed atomics) ---
  void add(CounterId id, std::uint64_t delta = 1);
  void record(HistogramId id, double value);

  /// Value accumulated by the *calling thread only* since the last reset().
  /// This is what the thread-local sim::SimStats shim reads.
  std::uint64_t threadValue(CounterId id) const;

  /// Aggregate of one counter over every shard (live + retired).  Does not
  /// consult external counters; use total(name) for those.
  std::uint64_t total(CounterId id) const;
  /// Aggregate by name: native counter if registered, else external reader,
  /// else 0.
  std::uint64_t total(const std::string& name) const;

  /// Copy the calling thread's first `count` counter slots into `out`
  /// (trace spans snapshot these to compute per-span metric deltas).
  void threadCounterSnapshot(std::uint64_t* out, std::size_t count) const;
  /// Number of registered native counters (ids below this are valid).
  std::size_t counterCount() const;
  /// Name of a native counter id (empty when out of range).
  std::string counterName(std::uint32_t idx) const;

  Snapshot snapshot() const;

  /// Zero every native counter/histogram shard (live and retired) and clear
  /// gauges.  External counters keep whatever their source holds.  Callers
  /// must be quiescent: concurrent add() during reset() is not torn (slots
  /// are atomics) but increments may land on either side of the zeroing.
  void reset();

  /// Implementation state; the type is public only so the per-thread shard
  /// handle (a file-local thread_local in metrics.cpp) can hold a pointer
  /// back to it for its thread-exit retirement hook.
  struct Impl;

 private:
  Registry() = default;
  Impl& impl() const;
};

/// The process-wide registry.  The sanctioned spelling for production code:
/// tools/context_lint.cmake bans direct Registry::instance() calls outside
/// this header/metrics.cpp so singleton reach-around stays greppable at one
/// symbol.
Registry& registry();

// Convenience free functions for call sites.
inline void add(CounterId id, std::uint64_t delta = 1) {
  registry().add(id, delta);
}
inline void record(HistogramId id, double value) {
  registry().record(id, value);
}

/// Per-context counter deltas, layered on (not replacing) the sharded
/// process registry.  While a slice is installed on a thread (SliceScope,
/// normally via core::ContextScope), every Registry::add on that thread
/// additionally lands in the slice and each of its chained parents — so a
/// job context's slice and its parent tenant's slice both see the delta
/// while the process totals stay exactly what they were without slicing.
///
/// Counters only: histogram shard slots are single-writer-per-thread by
/// construction, and a slice is written from every thread its context runs
/// on, so histograms are deliberately out of scope for slicing.
class ContextSlice {
 public:
  ContextSlice();

  /// Chain to an enclosing context's slice (nullptr = root).  Set once at
  /// construction time of the owning context, before any recording.
  void setParent(ContextSlice* parent) { parent_ = parent; }
  ContextSlice* parent() const { return parent_; }

  /// Accumulated delta for one counter id.
  std::uint64_t value(CounterId id) const;

  /// Name -> delta for every registered counter this slice saw (zero-delta
  /// counters are omitted).  Deterministic order (map).
  std::map<std::string, std::uint64_t> counters() const;

  /// Hot-path hook used by Registry::add; relaxed, multi-writer.
  void bump(std::uint32_t idx, std::uint64_t delta) {
    (*slots_)[idx].fetch_add(delta, std::memory_order_relaxed);
  }

 private:
  std::unique_ptr<std::array<std::atomic<std::uint64_t>, kMaxCounters>> slots_;
  ContextSlice* parent_ = nullptr;
};

/// Installs `slice` (possibly nullptr) as the calling thread's active slice
/// for the scope's lifetime; restores the previous one on exit.  Production
/// code uses core::ContextScope, which couples this to the thread's current
/// ExecutionContext.
class SliceScope {
 public:
  explicit SliceScope(ContextSlice* slice);
  ~SliceScope();
  SliceScope(const SliceScope&) = delete;
  SliceScope& operator=(const SliceScope&) = delete;

 private:
  ContextSlice* prev_;
};

}  // namespace amsyn::core::metrics
