// Admission-controlled, resilient batch execution: the serving-scale layer
// in front of synthesizeBatch.  Where synthesizeBatch is a raw fan-out —
// every spec set runs, failures are whatever the flow reports — the
// JobQueue adds the service-substrate policies the roadmap's "synthesis as
// a service" direction needs:
//
//   * admission control — a bounded queue (maxPending) sheds overflow jobs
//     with the structured Rejected status instead of letting an oversized
//     batch exhaust the machine; shedding is a pure function of job index
//     and capacity, so it is identical on a resumed run,
//   * per-job retry with seeded exponential backoff — a job whose flow
//     ends in a transient status (core::isRetryable) re-runs up to the
//     policy's attempt cap; injected batch faults draw fresh occurrences on
//     the retry (sim::BatchFaultScope persists across attempts),
//   * per-job wall-clock deadlines — forwarded into FlowOptions so the
//     engine enforces them at stage boundaries and Newton cancel points,
//   * exception containment — anything thrown by a job task (including
//     std::bad_alloc, classified out_of_memory and never retried) becomes
//     a Failed record, never a lost batch,
//   * crash-consistent journaling — every completed job appends one
//     checksummed JSON line (core/resilience.hpp); a killed batch re-run
//     with resume=true skips journaled jobs and reproduces the exact same
//     batchRunReportJson as an uninterrupted run.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/flow.hpp"
#include "core/flowgraph.hpp"
#include "core/resilience.hpp"

namespace amsyn::core {

struct JobQueueOptions {
  /// Admission cap: at most this many jobs run per batch; the rest are shed
  /// with Rejected.  0 = unbounded (admit everything).
  std::size_t maxPending = 0;
  /// Per-job retry policy (whole-flow re-run).  Default: no retries.
  RetryPolicy retry;
  /// Per-job deadline in ms, forwarded to FlowOptions::deadlineMs when
  /// nonzero (the flow option itself falls back to AMSYN_JOB_DEADLINE_MS).
  std::uint64_t deadlineMs = 0;
  /// Journal file path; empty = no journaling.
  std::string journalPath;
  /// Load the journal first and skip jobs it already records.  Ignored when
  /// journalPath is empty.  false truncates any stale journal at start.
  bool resume = false;
  /// Base flow options; job i runs with batchItemOptions(flow, i) exactly
  /// like synthesizeBatch, so per-job results match the raw fan-out.
  FlowOptions flow;
  /// Stage-graph factory, called once per flow attempt.  Default (null):
  /// amplifierStageGraph().  Tests inject cheap fabricated graphs here so
  /// queue semantics (admission, retry, journaling) are provable without
  /// running the simulator.
  std::function<std::vector<std::unique_ptr<FlowStage>>()> stageFactory;
};

enum class JobState : std::uint8_t { Queued, Running, Succeeded, Failed, Rejected };

/// Stable lowercase name ("queued" / "running" / "succeeded" / ...).
const char* jobStateName(JobState s);

struct JobRecord {
  std::size_t index = 0;
  JobState state = JobState::Queued;
  std::size_t attempts = 0;  ///< flow attempts consumed (0 for shed jobs)
  FlowResult result;
  bool fromJournal = false;  ///< restored from the journal, not re-run
};

struct BatchRunResult {
  std::vector<JobRecord> jobs;  ///< one per input spec set, in input order
  std::size_t admitted = 0;     ///< jobs that ran this invocation
  std::size_t rejected = 0;     ///< jobs shed by admission control
  std::size_t retried = 0;      ///< extra flow attempts granted this invocation
  std::size_t resumed = 0;      ///< jobs restored from the journal
};

class JobQueue {
 public:
  explicit JobQueue(JobQueueOptions opts);

  /// Run the batch under the queue's policies.  Deterministic given the
  /// options and batch (modulo wall-clock deadlines): per-job results are
  /// bit-identical at any AMSYN_THREADS, cache on or off, and identical
  /// between a full run and a crash+resume.
  BatchRunResult run(const std::vector<sizing::SpecSet>& batch,
                     const circuit::Process& proc);

  const JobQueueOptions& options() const { return opts_; }

 private:
  JobRecord runOne(std::size_t index, const sizing::SpecSet& specs,
                   const circuit::Process& proc);

  JobQueueOptions opts_;
};

/// Structured JSON report of a batch run: per-job outcome (state, topology,
/// status, attempts, redesigns) plus aggregate counts.  Built without the
/// metrics/span snapshot and without the resumed flag, so an interrupted
/// batch resumed to completion emits the byte-identical report of an
/// uninterrupted run (tests/resilience_test.cpp asserts this).
std::string batchRunReportJson(const BatchRunResult& result);

/// Convenience wrapper: JobQueue(opts).run(batch, proc).
BatchRunResult runBatchResilient(const std::vector<sizing::SpecSet>& batch,
                                 const circuit::Process& proc,
                                 const JobQueueOptions& opts = {});

}  // namespace amsyn::core
