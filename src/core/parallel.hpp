// Deterministic data-parallel loops over the shared work-stealing pool
// (core/threadpool.hpp).  Work is assigned by index, results land by index,
// and any randomness inside the body must come from a per-index RNG stream
// (num::Rng::split), so every helper here produces bit-identical results at
// AMSYN_THREADS=1 and AMSYN_THREADS=64.
#pragma once

#include <atomic>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <type_traits>
#include <vector>

#include "core/context.hpp"
#include "core/threadpool.hpp"

namespace amsyn::core {

/// Run fn(i) for i in [0, n) across the pool and block until every index has
/// finished.  The calling thread participates, and while waiting for
/// stragglers it drains other queued tasks, so nesting parallelFor inside
/// pool tasks cannot deadlock.  The first exception thrown by any index is
/// rethrown here; remaining indices are abandoned (each runs at most once).
template <typename Fn>
void parallelFor(std::size_t n, Fn&& fn, ThreadPool* poolOverride = nullptr) {
  if (n == 0) return;
  ThreadPool& pool = poolOverride ? *poolOverride : ThreadPool::global();

  struct State {
    std::atomic<std::size_t> next{0};     ///< next unclaimed index
    std::atomic<std::size_t> helpers{0};  ///< helper tasks not yet finished
    std::atomic<bool> failed{false};
    std::mutex mutex;
    std::condition_variable cv;
    std::exception_ptr error;
  };
  auto st = std::make_shared<State>();

  // Shared by the caller and every helper task.  Captures fn by reference:
  // safe because this function does not return until helpers_ hits zero.
  auto runIndices = [st, &fn, n] {
    std::size_t i;
    while (!st->failed.load(std::memory_order_relaxed) &&
           (i = st->next.fetch_add(1)) < n) {
      try {
        fn(i);
      } catch (...) {
        bool expected = false;
        if (st->failed.compare_exchange_strong(expected, true)) {
          std::lock_guard<std::mutex> lk(st->mutex);
          st->error = std::current_exception();
        }
      }
    }
  };

  // Helper tasks run under the submitting thread's execution context: a
  // job's parallel sections stay inside that job's scope even when its
  // indices execute on shared pool workers (or are stolen by another
  // tenant's barrier wait below).
  ExecutionContext& ctx = ExecutionContext::current();

  const std::size_t helperCount = std::min(pool.threadCount(), n - 1);
  st->helpers.store(helperCount);
  for (std::size_t h = 0; h < helperCount; ++h) {
    pool.submit([st, runIndices, &ctx] {
      ContextScope scope(ctx);
      runIndices();
      if (st->helpers.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lk(st->mutex);
        st->cv.notify_all();
      }
    });
  }

  runIndices();

  // Barrier: all helper closures reference fn and the caller's stack, so
  // they must finish before we return.  Helping the pool here keeps nested
  // parallel sections live even when every worker is blocked at a barrier.
  std::unique_lock<std::mutex> lk(st->mutex);
  while (st->helpers.load() != 0) {
    lk.unlock();
    const bool ranSomething = pool.tryRunOneTask();
    lk.lock();
    if (!ranSomething)
      st->cv.wait(lk, [&] { return st->helpers.load() == 0; });
  }
  if (st->failed.load()) std::rethrow_exception(st->error);
}

/// parallelFor that collects return values: out[i] = fn(i).  The result type
/// must be default-constructible (it is assigned into a presized vector).
template <typename Fn>
auto parallelMap(std::size_t n, Fn&& fn, ThreadPool* poolOverride = nullptr)
    -> std::vector<std::decay_t<std::invoke_result_t<Fn&, std::size_t>>> {
  std::vector<std::decay_t<std::invoke_result_t<Fn&, std::size_t>>> out(n);
  parallelFor(
      n, [&](std::size_t i) { out[i] = fn(i); }, poolOverride);
  return out;
}

/// parallelFor in per-index error-capture mode: fn(i) runs for EVERY index,
/// and an exception thrown by index i is stored in the returned vector at
/// slot i instead of aborting its siblings.  Use at evaluation boundaries
/// (population scoring, corner fan-out) where one poisoned candidate must
/// not cost the batch: indices that completed keep results bit-identical to
/// a failure-free run.  errs[i] is null for indices that completed normally.
template <typename Fn>
std::vector<std::exception_ptr> parallelForCaptured(std::size_t n, Fn&& fn,
                                                    ThreadPool* poolOverride = nullptr) {
  std::vector<std::exception_ptr> errs(n);
  parallelFor(
      n,
      [&](std::size_t i) {
        try {
          fn(i);
        } catch (...) {
          errs[i] = std::current_exception();  // each index written once: no race
        }
      },
      poolOverride);
  return errs;
}

/// RAII global-pool override for tests and benchmarks: pins the pool seen by
/// parallelFor/parallelMap to a fixed thread count for the scope's lifetime.
class ScopedThreadPool {
 public:
  explicit ScopedThreadPool(std::size_t threads) : pool_(threads) {
    previous_ = ThreadPool::setGlobal(&pool_);
  }
  ~ScopedThreadPool() { ThreadPool::setGlobal(previous_); }

  ScopedThreadPool(const ScopedThreadPool&) = delete;
  ScopedThreadPool& operator=(const ScopedThreadPool&) = delete;

  ThreadPool& pool() { return pool_; }

 private:
  ThreadPool pool_;
  ThreadPool* previous_ = nullptr;
};

}  // namespace amsyn::core
