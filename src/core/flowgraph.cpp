#include "core/flowgraph.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>
#include <utility>

#include "core/evalcache.hpp"
#include "core/surrogate.hpp"
#include "core/trace.hpp"
#include "knowledge/opamp_plans.hpp"
#include "sim/fault.hpp"
#include "sim/solver.hpp"
#include "sizing/builders.hpp"
#include "sizing/eqmodel.hpp"
#include "sizing/perfmodel.hpp"
#include "topology/select.hpp"

namespace amsyn::core {

namespace {

/// Spec tolerance the verification stages grant: a measurement within 15%
/// (normalized) of the bound still passes, absorbing model/sim noise.
constexpr double kVerifyTolerance = 0.15;

/// Constraint specs the simulator can actually judge (the shared
/// electrical-performance table).
sizing::SpecSet filterElectrical(const sizing::SpecSet& specs) {
  sizing::SpecSet electrical;
  for (const auto& s : specs.specs()) {
    if (s.isObjective()) continue;
    if (isElectricalPerformance(s.performance))
      electrical.require(s.performance, s.kind, s.bound, s.weight);
  }
  return electrical;
}

/// Failure reason with the structured status appended when one exists.
std::string withStatusSuffix(std::string reason, EvalStatus st) {
  if (st != EvalStatus::Ok) reason += std::string(": ") + evalStatusName(st);
  return reason;
}

/// Counters shared by every flow, registered eagerly so the run-report
/// counter schema does not depend on which entry point ran first.
struct FlowCounters {
  metrics::CounterId attempts;
  metrics::CounterId batchDesigns;
  metrics::CounterId retryAttempts;    ///< stage re-executions granted
  metrics::CounterId retrySuccesses;   ///< stages that passed on a re-execution
  metrics::CounterId retryExhausted;   ///< stages still failed after >=1 retry
  metrics::CounterId deadlineExpired;  ///< flows terminated by their deadline
};
const FlowCounters& flowCounters() {
  static const FlowCounters ids = {
      metrics::registry().counter("core.flow.attempts"),
      metrics::registry().counter("core.flow.batch.designs"),
      metrics::registry().counter("core.flow.retry.attempts"),
      metrics::registry().counter("core.flow.retry.successes"),
      metrics::registry().counter("core.flow.retry.exhausted"),
      metrics::registry().counter("core.flow.deadline.expired"),
  };
  return ids;
}

/// Sleep for the retry backoff, never past the job deadline.
void backoffSleep(std::uint64_t delayMs, const DeadlineBudget& deadline) {
  if (delayMs == 0) return;
  if (deadline.armed()) {
    const std::int64_t leftNs = deadline.deadlineNs() - EvalBudget::nowNs();
    if (leftNs <= 0) return;
    delayMs = std::min<std::uint64_t>(
        delayMs, static_cast<std::uint64_t>(leftNs / 1'000'000) + 1);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(delayMs));
}

}  // namespace

void applyEvalCacheOptions(const EvalCacheOptions& opts) {
  applyEvalCacheOptions(opts, ExecutionContext::current());
}

void applyEvalCacheOptions(const EvalCacheOptions& opts, ExecutionContext& ctx) {
  switch (opts.mode) {
    case EvalCacheOptions::Mode::Default:
      break;
    case EvalCacheOptions::Mode::Disabled:
      ctx.evalCache().setEnabled(false);
      break;
    case EvalCacheOptions::Mode::Bounded:
      ctx.evalCache().setCapacity(opts.capacity);
      break;
  }
}

void applySolverOption(SolverOption opt) {
  applySolverOption(opt, ExecutionContext::current());
}

void applySolverOption(SolverOption opt, ExecutionContext& ctx) {
  switch (opt) {
    case SolverOption::Default:
      break;
    case SolverOption::Auto:
      ctx.setSolverKind(SolverKind::Auto);
      break;
    case SolverOption::Dense:
      ctx.setSolverKind(SolverKind::Dense);
      break;
    case SolverOption::Sparse:
      ctx.setSolverKind(SolverKind::Sparse);
      break;
  }
}

void applySurrogateOption(SurrogateOption opt) {
  applySurrogateOption(opt, ExecutionContext::current());
}

void applySurrogateOption(SurrogateOption opt, ExecutionContext& ctx) {
  auto& store = ctx.surrogateStore();
  switch (opt) {
    case SurrogateOption::Default:
      // Touch the store anyway (mode() forces the handle) so the
      // core.surrogate.* counters exist in every flow's report snapshot.
      (void)store.mode();
      break;
    case SurrogateOption::Off:
      store.setMode(surrogate::Mode::Off);
      break;
    case SurrogateOption::Ordering:
      store.setMode(surrogate::Mode::Ordering);
      break;
    case SurrogateOption::Pruning:
      store.setMode(surrogate::Mode::Pruning);
      break;
  }
}

// ---------------------------------------------------------------------------
// FlowEngine

FlowEngine::FlowEngine(std::vector<std::unique_ptr<FlowStage>> stages)
    : rules_(defaultRetargetRules()) {
  (void)flowCounters();  // eager registration (schema stability)
  auto& registry = metrics::registry();
  stages_.reserve(stages.size());
  for (auto& stage : stages) {
    StageSlot slot;
    const std::string name = stage->name();
    slot.spanName = "stage." + name;
    slot.runs = registry.counter("core.flow.stage." + name + ".runs");
    slot.failures = registry.counter("core.flow.stage." + name + ".failures");
    slot.stage = std::move(stage);
    stages_.push_back(std::move(slot));
  }
}

void FlowEngine::setRetargetRules(std::vector<RetargetRule> rules) {
  rules_ = std::move(rules);
}

std::vector<RetargetRule> FlowEngine::defaultRetargetRules() {
  // Parasitics and model error mainly eat bandwidth and phase margin, so
  // redesigns hand the sizer bounds corrected by what verification actually
  // measured (rather than blind margins), plus a small safety factor that
  // grows per attempt.
  std::vector<RetargetRule> rules;
  RetargetRule ugf;
  ugf.performance = "ugf";
  ugf.kind = sizing::SpecKind::GreaterEqual;
  ugf.correction = RetargetRule::Correction::DivideByRatio;
  rules.push_back(std::move(ugf));
  RetargetRule pm;
  pm.performance = "pm";
  pm.kind = sizing::SpecKind::GreaterEqual;
  pm.correction = RetargetRule::Correction::AddDelta;
  pm.boundCap = 80.0;
  pm.perAttemptPad = 2.0;
  rules.push_back(std::move(pm));
  return rules;
}

sizing::SpecSet FlowEngine::retarget(const sizing::SpecSet& specs,
                                     const std::vector<RetargetRule>& rules,
                                     const CalibrationStore& cal,
                                     std::size_t attempt) {
  const double safety = 1.0 + 0.05 * static_cast<double>(attempt);
  sizing::SpecSet target;
  for (const auto& s : specs.specs()) {
    sizing::Spec t = s;
    if (!t.isObjective()) {
      for (const auto& rule : rules) {
        if (t.performance != rule.performance || t.kind != rule.kind) continue;
        switch (rule.correction) {
          case RetargetRule::Correction::DivideByRatio:
            t.bound =
                t.bound / std::max(cal.ratio(t.performance), rule.ratioFloor) * safety;
            break;
          case RetargetRule::Correction::AddDelta:
            t.bound = std::min(t.bound + cal.delta(t.performance) * safety +
                                   rule.perAttemptPad * static_cast<double>(attempt),
                               rule.boundCap);
            break;
        }
      }
    }
    if (t.isObjective())
      (t.kind == sizing::SpecKind::Minimize)
          ? target.minimize(t.performance, t.weight, t.norm)
          : target.maximize(t.performance, t.weight, t.norm);
    else
      target.require(t.performance, t.kind, t.bound, t.weight);
  }
  return target;
}

FlowResult FlowEngine::run(const sizing::SpecSet& specs, const circuit::Process& proc,
                           const FlowOptions& opts) {
  return run(specs, proc, opts, ExecutionContext::current());
}

FlowResult FlowEngine::run(const sizing::SpecSet& specs, const circuit::Process& proc,
                           const FlowOptions& opts, ExecutionContext& exec) {
  AMSYN_SPAN("flow");
  ContextScope contextScope(exec);
  applyEvalCacheOptions(opts.evalCache, exec);
  applySolverOption(opts.solver, exec);
  applySurrogateOption(opts.surrogate, exec);

  DesignContext ctx(specs, proc, opts);
  ctx.exec = &exec;
  ctx.electrical = filterElectrical(specs);
  DeadlineBudget jobDeadline(0, effectiveDeadlineMs(opts.deadlineMs));
  ctx.jobBudget = &jobDeadline;

  // Deadline expiry (real or injected by the chaos schedule) is terminal:
  // the allowance covered the whole job, so neither stage retries nor
  // redesign attempts may follow it.
  const auto deadlineHit = [&] {
    return jobDeadline.expired() ||
           sim::takeBatchFault(sim::FaultSite::DeadlineCheck);
  };
  const auto expireNow = [&](const std::string& where) {
    metrics::add(flowCounters().deadlineExpired);
    ctx.result.success = false;
    ctx.result.failureReason = "job deadline expired at " + where;
    ctx.result.failureStatus = EvalStatus::DeadlineExpired;
  };

  for (std::size_t attempt = 0; attempt <= opts.maxRedesigns; ++attempt) {
    metrics::add(flowCounters().attempts);
    ctx.attempt = attempt;
    if (attempt > 0) ++ctx.result.redesigns;
    ctx.target = retarget(specs, rules_, ctx.calibration, attempt);
    ctx.candidates.clear();

    bool attemptFailed = false;
    for (auto& slot : stages_) {
      if (deadlineHit()) {
        expireNow("stage boundary '" + slot.stage->name() + "'");
        return std::move(ctx.result);
      }
      // Per-stage retry loop: each execution appends its own StageRecord,
      // so the trail shows exactly what ran and why it ran again.
      for (std::size_t execution = 1;; ++execution) {
        metrics::add(slot.runs);
        const std::uint64_t t0 = trace::monotonicNowNs();
        StageOutcome outcome;
        if (sim::takeBatchFault(sim::FaultSite::StageRun)) {
          outcome = StageOutcome::fail("injected stage fault (chaos schedule)",
                                       EvalStatus::InternalError);
        } else {
          AMSYN_SPAN(slot.spanName.c_str());
          outcome = slot.stage->run(ctx);
        }
        StageRecord record;
        record.name = slot.stage->name();
        record.attempt = attempt;
        record.status = outcome.status;
        record.detail = outcome.detail;
        record.evalStatus = outcome.evalStatus;
        record.seconds = static_cast<double>(trace::monotonicNowNs() - t0) * 1e-9;
        ctx.result.stageRecords.push_back(std::move(record));

        if (outcome.status != StageStatus::Failed) {
          if (execution > 1) metrics::add(flowCounters().retrySuccesses);
          break;
        }
        metrics::add(slot.failures);
        if (outcome.evalStatus == EvalStatus::DeadlineExpired ||
            jobDeadline.expired()) {
          expireNow("stage '" + slot.stage->name() + "'");
          return std::move(ctx.result);
        }
        if (!opts.stageRetry.shouldRetry(outcome.evalStatus, execution)) {
          if (execution > 1) metrics::add(flowCounters().retryExhausted);
          ctx.result.failureReason = outcome.detail;
          ctx.result.failureStatus = outcome.evalStatus;
          attemptFailed = true;
          break;  // redesign with the updated calibration
        }
        metrics::add(flowCounters().retryAttempts);
        backoffSleep(opts.stageRetry.backoff.delayMs(opts.seed, execution),
                     jobDeadline);
      }
      if (attemptFailed) break;
    }
    if (!attemptFailed) {
      ctx.result.success = true;
      ctx.result.failureReason.clear();
      ctx.result.failureStatus = EvalStatus::Ok;
      return std::move(ctx.result);
    }
  }
  return std::move(ctx.result);
}

// ---------------------------------------------------------------------------
// Concrete stages

StageOutcome TopologySelectStage::run(DesignContext& ctx) {
  if (!library_ || libraryProc_ != &ctx.proc || libraryLoadCap_ != ctx.opts.loadCap ||
      librarySpace_ != ctx.opts.topologySpace) {
    library_ = std::make_unique<topology::TopologyLibrary>(
        topology::amplifierLibrary(ctx.proc, ctx.opts.loadCap, ctx.opts.topologySpace));
    libraryProc_ = &ctx.proc;
    libraryLoadCap_ = ctx.opts.loadCap;
    librarySpace_ = ctx.opts.topologySpace;
  }

  sizing::SynthesisOptions sopts = ctx.opts.synthesis;
  sopts.seed = ctx.opts.seed + ctx.attempt;
  // Redesigns chase a progressively tighter corner of the design space;
  // give the annealer a bigger budget each round.
  if (ctx.attempt > 0) {
    sopts.anneal.movesPerStage =
        std::max<std::size_t>(sopts.anneal.movesPerStage, 400 * (ctx.attempt + 1));
    sopts.anneal.stagnationStages = 20;
    sopts.refineEvaluations = std::max<std::size_t>(sopts.refineEvaluations, 800);
  }

  const auto sel = topology::selectAndSize(*library_, ctx.target, sopts);
  if (!sel.success)
    return StageOutcome::skip("optimization-based sizing produced no candidate");
  CandidateDesign cand;
  cand.topology = sel.topology;
  cand.x = sel.sizing.x;
  cand.predicted = sel.sizing.performance;
  ctx.candidates.push_back(std::move(cand));
  return StageOutcome::pass();
}

StageOutcome PlanCandidateStage::run(DesignContext& ctx) {
  // Plan candidate from the retargeted bounds; the first candidate that
  // passes pre-layout verification wins, so this rides alongside the
  // optimizer rather than replacing it.
  const auto planIn = knowledge::opampPlanInputs(ctx.target, ctx.opts.loadCap);
  if (!planIn)
    return StageOutcome::skip("specs carry no gain_db+ugf pair for the design plan");
  const auto plan = knowledge::twoStageOpampPlan();
  const auto pres = plan.execute(ctx.proc, *planIn);
  if (!pres.success) return StageOutcome::skip("design plan backtracking failed");
  const sizing::TwoStageEquationModel model(ctx.proc, ctx.opts.loadCap);
  CandidateDesign cand;
  cand.topology = "two-stage-miller";
  cand.x = knowledge::extractTwoStageDesign(pres.context);
  cand.predicted = model.evaluate(cand.x);
  ctx.candidates.push_back(std::move(cand));
  return StageOutcome::pass();
}

StageOutcome BuildStage::run(DesignContext& ctx) {
  if (ctx.candidates.empty())
    return StageOutcome::fail("sizing failed to meet the (possibly inflated) specs",
                              EvalStatus::Ok);  // design failure, not machinery
  for (auto& cand : ctx.candidates) {
    const auto* builder = sizing::NetlistBuilderRegistry::instance().find(cand.topology);
    if (!builder)
      return StageOutcome::fail(
          "no netlist builder registered for topology '" + cand.topology + "'",
          EvalStatus::BadTopology);
    cand.netlist = (*builder)(cand.x, ctx.proc,
                              sizing::OpampTestbench{ctx.opts.loadCap, 2.2, true});
    cand.built = true;
  }
  return StageOutcome::pass();
}

StageOutcome VerifyStage::run(DesignContext& ctx) {
  // The verify measurements are the flow's serial simulator work: thread
  // the job deadline into them and open the solver hooks to the batch
  // fault schedule (see sim/fault.hpp for why only this window may).
  EvalBudget* budget = ctx.jobBudget ? &ctx.jobBudget->budget() : nullptr;
  sim::SolverFaultWindow faultWindow;
  if (phase_ == VerifyPhase::PreLayout) {
    VerificationRecord pre;
    pre.stage = "pre-layout";
    bool any = false;
    circuit::Netlist schematic;
    for (auto& cand : ctx.candidates) {
      const auto measured =
          measureAmplifier(cand.netlist, ctx.proc, ctx.opts.testbench, budget);
      const bool passed = !measured.count("_infeasible") &&
                          ctx.electrical.satisfied(measured, kVerifyTolerance);
      // Update the model-calibration terms from this measurement.
      if (measured.count("ugf") && cand.predicted.count("ugf") &&
          cand.predicted.at("ugf") > 0)
        ctx.calibration.recordRatio(
            "ugf", kModelCalibration, measured.at("ugf") / cand.predicted.at("ugf"));
      if (measured.count("pm") && cand.predicted.count("pm"))
        ctx.calibration.recordDelta(
            "pm", kModelCalibration,
            std::max(0.0, cand.predicted.at("pm") - measured.at("pm")));
      if (!any || passed) {
        pre.measured = measured;
        pre.passed = passed;
        schematic = std::move(cand.netlist);
        ctx.result.topology = cand.topology;
        ctx.result.designPoint = cand.x;
        any = true;
      }
      if (passed) break;
    }
    ctx.result.schematic = std::move(schematic);
    ctx.result.verifications.push_back(pre);
    if (!pre.passed) {
      const EvalStatus st = sizing::performanceStatus(pre.measured);
      return StageOutcome::fail(
          withStatusSuffix("pre-layout verification failed (model/sim mismatch)", st),
          st);
    }
    return StageOutcome::pass();
  }

  // Post-layout: measure the annotated netlist against the same specs and
  // record what the parasitics cost relative to this attempt's pre-layout
  // measurement.
  const VerificationRecord* preRec = nullptr;
  for (auto it = ctx.result.verifications.rbegin();
       it != ctx.result.verifications.rend(); ++it)
    if (it->stage == "pre-layout") {
      preRec = &*it;
      break;
    }

  VerificationRecord post;
  post.stage = "post-layout";
  post.measured = measureAmplifier(ctx.result.cell.annotated, ctx.proc,
                                   ctx.opts.testbench, budget);
  post.passed = !post.measured.count("_infeasible") &&
                ctx.electrical.satisfied(post.measured, kVerifyTolerance);
  if (preRec) {
    if (post.measured.count("ugf") && preRec->measured.count("ugf") &&
        preRec->measured.at("ugf") > 0)
      ctx.calibration.recordRatio(
          "ugf", kLayoutCalibration,
          post.measured.at("ugf") / preRec->measured.at("ugf"));
    if (post.measured.count("pm") && preRec->measured.count("pm"))
      ctx.calibration.recordDelta(
          "pm", kLayoutCalibration,
          std::max(0.0, preRec->measured.at("pm") - post.measured.at("pm")));
  }
  ctx.result.verifications.push_back(post);
  if (!post.passed) {
    const EvalStatus st = sizing::performanceStatus(post.measured);
    return StageOutcome::fail(
        withStatusSuffix("post-layout verification failed; closing the loop", st), st);
  }
  return StageOutcome::pass();
}

StageOutcome LayoutStage::run(DesignContext& ctx) {
  CellLayoutOptions lopts = ctx.opts.layout;
  lopts.seed = ctx.opts.seed + ctx.attempt;
  ctx.result.cell = layoutCellGeometry(ctx.result.schematic, ctx.proc, lopts);
  if (!ctx.result.cell.success)
    return StageOutcome::fail("cell layout failed (placement/routing)", EvalStatus::Ok);
  return StageOutcome::pass();
}

StageOutcome ExtractStage::run(DesignContext& ctx) {
  extractCell(ctx.result.schematic, ctx.proc, ctx.result.cell);
  return StageOutcome::pass();
}

std::vector<std::unique_ptr<FlowStage>> amplifierStageGraph() {
  std::vector<std::unique_ptr<FlowStage>> stages;
  stages.push_back(std::make_unique<TopologySelectStage>());
  stages.push_back(std::make_unique<PlanCandidateStage>());
  stages.push_back(std::make_unique<BuildStage>());
  stages.push_back(std::make_unique<VerifyStage>(VerifyPhase::PreLayout));
  stages.push_back(std::make_unique<LayoutStage>());
  stages.push_back(std::make_unique<ExtractStage>());
  stages.push_back(std::make_unique<VerifyStage>(VerifyPhase::PostLayout));
  return stages;
}

}  // namespace amsyn::core
