#include "core/metrics.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <stdexcept>

namespace amsyn::core::metrics {

namespace {

struct HistSlot {
  // Only the owning thread writes these (relaxed stores); the aggregator
  // only loads, so no CAS loops are needed anywhere on the hot path.
  std::atomic<std::uint64_t> count{0};
  std::atomic<double> sum{0.0};
  std::atomic<double> min{std::numeric_limits<double>::infinity()};
  std::atomic<double> max{-std::numeric_limits<double>::infinity()};
};

struct Shard {
  std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
  std::array<HistSlot, kMaxHistograms> hists{};
};

void mergeHist(HistogramSnapshot& into, std::uint64_t count, double sum, double mn,
               double mx) {
  into.count += count;
  into.sum += sum;
  into.min = std::min(into.min, mn);
  into.max = std::max(into.max, mx);
}

}  // namespace

struct Registry::Impl {
  mutable std::mutex mutex;
  std::map<std::string, std::uint32_t> counterIndex;
  std::vector<std::string> counterNames;
  std::map<std::string, std::uint32_t> histIndex;
  std::vector<std::string> histNames;
  std::vector<std::pair<std::string, std::function<std::uint64_t()>>> externals;
  std::map<std::string, double> gauges;
  std::vector<std::shared_ptr<Shard>> shards;  ///< live thread shards
  // Totals folded in by exiting threads so their contributions survive them.
  std::array<std::uint64_t, kMaxCounters> retiredCounters{};
  std::array<HistogramSnapshot, kMaxHistograms> retiredHists{};

  void retire(const std::shared_ptr<Shard>& s) {
    std::lock_guard<std::mutex> lk(mutex);
    for (std::size_t i = 0; i < kMaxCounters; ++i)
      retiredCounters[i] += s->counters[i].load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < kMaxHistograms; ++i) {
      const auto& h = s->hists[i];
      const std::uint64_t c = h.count.load(std::memory_order_relaxed);
      if (c == 0) continue;
      mergeHist(retiredHists[i], c, h.sum.load(std::memory_order_relaxed),
                h.min.load(std::memory_order_relaxed),
                h.max.load(std::memory_order_relaxed));
    }
    shards.erase(std::remove(shards.begin(), shards.end(), s), shards.end());
  }

  std::uint64_t counterTotalLocked(std::uint32_t idx) const {
    std::uint64_t total = retiredCounters[idx];
    for (const auto& s : shards) total += s->counters[idx].load(std::memory_order_relaxed);
    return total;
  }
};

namespace {

/// Per-thread shard handle: lazily registers with the registry, and folds
/// this thread's totals into the retired accumulators on thread exit — the
/// step the old thread_local SimStats never had, which is why pool-thread
/// counters used to vanish.
struct ShardHandle {
  std::shared_ptr<Shard> shard;
  Registry::Impl* owner = nullptr;
  ~ShardHandle() {
    if (owner && shard) owner->retire(shard);
  }
};
thread_local ShardHandle tlShard;

/// The calling thread's active per-context slice (nullptr = unsliced).
/// Owned by whatever ExecutionContext installed it; a SliceScope strictly
/// outlives the recording it covers, so no lifetime management is needed
/// here.
thread_local ContextSlice* tlSlice = nullptr;

Shard& threadShard(Registry::Impl& impl) {
  if (!tlShard.shard) {
    auto s = std::make_shared<Shard>();
    {
      std::lock_guard<std::mutex> lk(impl.mutex);
      impl.shards.push_back(s);
    }
    tlShard.shard = std::move(s);
    tlShard.owner = &impl;
  }
  return *tlShard.shard;
}

}  // namespace

Registry& Registry::instance() {
  static Registry* r = new Registry;  // leaked: reachable from thread-exit hooks
  return *r;
}

Registry::Impl& Registry::impl() const {
  static Impl* i = new Impl;
  return *i;
}

CounterId Registry::counter(const std::string& name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mutex);
  auto it = im.counterIndex.find(name);
  if (it != im.counterIndex.end()) return {it->second};
  if (im.counterNames.size() >= kMaxCounters)
    throw std::length_error(
        "metrics::Registry: counter capacity exhausted registering \"" + name +
        "\" (" + std::to_string(im.counterNames.size()) + "/" +
        std::to_string(kMaxCounters) + " counters in use; raise kMaxCounters)");
  const auto idx = static_cast<std::uint32_t>(im.counterNames.size());
  im.counterNames.push_back(name);
  im.counterIndex.emplace(name, idx);
  return {idx};
}

HistogramId Registry::histogram(const std::string& name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mutex);
  auto it = im.histIndex.find(name);
  if (it != im.histIndex.end()) return {it->second};
  if (im.histNames.size() >= kMaxHistograms)
    throw std::length_error(
        "metrics::Registry: histogram capacity exhausted registering \"" + name +
        "\" (" + std::to_string(im.histNames.size()) + "/" +
        std::to_string(kMaxHistograms) +
        " histograms in use; raise kMaxHistograms)");
  const auto idx = static_cast<std::uint32_t>(im.histNames.size());
  im.histNames.push_back(name);
  im.histIndex.emplace(name, idx);
  return {idx};
}

void Registry::registerExternal(const std::string& name,
                                std::function<std::uint64_t()> reader) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mutex);
  for (auto& [n, fn] : im.externals)
    if (n == name) {
      fn = std::move(reader);
      return;
    }
  im.externals.emplace_back(name, std::move(reader));
}

void Registry::setGauge(const std::string& name, double value) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mutex);
  im.gauges[name] = value;
}

void Registry::add(CounterId id, std::uint64_t delta) {
  threadShard(impl()).counters[id.idx].fetch_add(delta, std::memory_order_relaxed);
  // Per-context attribution rides on top of the shard write: the process
  // total above is the source of truth, slices are pure observers, so the
  // thread-count-invariance and bit-identity of totals are untouched.
  for (ContextSlice* s = tlSlice; s; s = s->parent()) s->bump(id.idx, delta);
}

void Registry::record(HistogramId id, double value) {
  HistSlot& h = threadShard(impl()).hists[id.idx];
  h.count.fetch_add(1, std::memory_order_relaxed);
  h.sum.store(h.sum.load(std::memory_order_relaxed) + value, std::memory_order_relaxed);
  if (value < h.min.load(std::memory_order_relaxed))
    h.min.store(value, std::memory_order_relaxed);
  if (value > h.max.load(std::memory_order_relaxed))
    h.max.store(value, std::memory_order_relaxed);
}

std::uint64_t Registry::threadValue(CounterId id) const {
  if (!tlShard.shard) return 0;
  return tlShard.shard->counters[id.idx].load(std::memory_order_relaxed);
}

std::uint64_t Registry::total(CounterId id) const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mutex);
  return im.counterTotalLocked(id.idx);
}

std::uint64_t Registry::total(const std::string& name) const {
  Impl& im = impl();
  std::function<std::uint64_t()> reader;
  {
    std::lock_guard<std::mutex> lk(im.mutex);
    auto it = im.counterIndex.find(name);
    if (it != im.counterIndex.end()) return im.counterTotalLocked(it->second);
    for (const auto& [n, fn] : im.externals)
      if (n == name) {
        reader = fn;
        break;
      }
  }
  return reader ? reader() : 0;  // external reader runs outside the lock
}

void Registry::threadCounterSnapshot(std::uint64_t* out, std::size_t count) const {
  if (!tlShard.shard) {
    std::fill(out, out + count, 0);
    return;
  }
  for (std::size_t i = 0; i < count && i < kMaxCounters; ++i)
    out[i] = tlShard.shard->counters[i].load(std::memory_order_relaxed);
}

std::size_t Registry::counterCount() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mutex);
  return im.counterNames.size();
}

std::string Registry::counterName(std::uint32_t idx) const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mutex);
  return idx < im.counterNames.size() ? im.counterNames[idx] : std::string{};
}

Snapshot Registry::snapshot() const {
  Impl& im = impl();
  Snapshot snap;
  std::vector<std::pair<std::string, std::function<std::uint64_t()>>> externals;
  {
    std::lock_guard<std::mutex> lk(im.mutex);
    for (std::uint32_t i = 0; i < im.counterNames.size(); ++i)
      snap.counters[im.counterNames[i]] = im.counterTotalLocked(i);
    for (std::uint32_t i = 0; i < im.histNames.size(); ++i) {
      HistogramSnapshot h = im.retiredHists[i];
      for (const auto& s : im.shards) {
        const auto& slot = s->hists[i];
        const std::uint64_t c = slot.count.load(std::memory_order_relaxed);
        if (c == 0) continue;
        mergeHist(h, c, slot.sum.load(std::memory_order_relaxed),
                  slot.min.load(std::memory_order_relaxed),
                  slot.max.load(std::memory_order_relaxed));
      }
      if (h.count > 0) snap.histograms[im.histNames[i]] = h;
    }
    snap.gauges = im.gauges;
    externals = im.externals;
  }
  for (const auto& [name, reader] : externals) snap.counters[name] = reader();
  return snap;
}

void Registry::reset() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mutex);
  im.retiredCounters.fill(0);
  im.retiredHists.fill(HistogramSnapshot{});
  for (const auto& s : im.shards) {
    for (auto& c : s->counters) c.store(0, std::memory_order_relaxed);
    for (auto& h : s->hists) {
      h.count.store(0, std::memory_order_relaxed);
      h.sum.store(0.0, std::memory_order_relaxed);
      h.min.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
      h.max.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
    }
  }
  im.gauges.clear();
}

Registry& registry() { return Registry::instance(); }

ContextSlice::ContextSlice()
    : slots_(std::make_unique<std::array<std::atomic<std::uint64_t>, kMaxCounters>>()) {
  for (auto& s : *slots_) s.store(0, std::memory_order_relaxed);
}

std::uint64_t ContextSlice::value(CounterId id) const {
  return (*slots_)[id.idx].load(std::memory_order_relaxed);
}

std::map<std::string, std::uint64_t> ContextSlice::counters() const {
  std::map<std::string, std::uint64_t> out;
  auto& reg = Registry::instance();
  const std::size_t n = reg.counterCount();
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint64_t v = (*slots_)[i].load(std::memory_order_relaxed);
    if (v != 0) out.emplace(reg.counterName(i), v);
  }
  return out;
}

SliceScope::SliceScope(ContextSlice* slice) : prev_(tlSlice) { tlSlice = slice; }

SliceScope::~SliceScope() { tlSlice = prev_; }

}  // namespace amsyn::core::metrics
