// The macrocell cell-layout flow of section 3.1, end to end: matching-
// constraint generation [47] -> device stacking [43,45] -> module generation
// -> KOAN-style placement [35] -> ANAGRAM-style routing [35] -> parasitic
// extraction -> back-annotation.  One call turns a sized transistor netlist
// into a laid-out, extracted cell.
#pragma once

#include <string>
#include <vector>

#include "circuit/netlist.hpp"
#include "extract/extract.hpp"
#include "extract/matchgen.hpp"
#include "layout/cell/place.hpp"
#include "layout/cell/route.hpp"

namespace amsyn::core {

struct CellLayoutOptions {
  bool useStacking = true;        ///< merge diffusions before placement
  bool annealPlacement = true;    ///< false = deterministic row ("manual-style")
  layout::PlacerOptions placer;
  layout::RouterOptions router;
  /// Wire classes per net (others default to Quiet).
  std::vector<layout::RouteNet> netOverrides;
  /// Nets never routed (testbench artifacts: feedback RC, stimulus).
  std::vector<std::string> skipNets;
  std::uint64_t seed = 1;
};

struct CellLayoutResult {
  geom::Layout layout;
  /// The placeable components (cell masters) the placement instances point
  /// into (geom::CellInstance::master is a non-owning pointer).  Owned here
  /// so the result is self-contained: transformedShapes()/extraction stay
  /// valid after the layout call returns.  Note a *copy* of the result
  /// aliases the source's components; move it instead.
  std::vector<layout::PlacementComponent> components;
  layout::Placement placement;
  layout::RouteResult routing;
  extract::ExtractionResult parasitics;
  circuit::Netlist annotated;    ///< original netlist + extracted parasitics
  std::vector<extract::MatchConstraint> matching;
  double areaLambda2 = 0.0;      ///< bounding-box area in lambda^2
  double wirelengthLambda = 0.0;
  std::size_t stackedDevices = 0;  ///< devices absorbed into merged stacks
  bool success = false;
  /// True when the annealed placement proved unroutable and the flow fell
  /// back to the deterministic row placement.
  bool usedRowFallback = false;
};

/// Lay out the MOS/R/C devices of `net`.  Testbench elements (sources,
/// controlled sources, huge feedback RCs) are skipped automatically; only
/// physical devices get geometry.  Equivalent to layoutCellGeometry
/// followed by extractCell.
CellLayoutResult layoutCell(const circuit::Netlist& net, const circuit::Process& proc,
                            const CellLayoutOptions& opts = {});

/// The geometric half of layoutCell: matching constraints, stacking, module
/// generation, placement and routing, through area/wirelength/success — but
/// no parasitic extraction (`parasitics`/`annotated` stay empty).  The flow
/// engine's layout stage runs this, so extraction is skipped when the
/// placement or routing failed.
CellLayoutResult layoutCellGeometry(const circuit::Netlist& net,
                                    const circuit::Process& proc,
                                    const CellLayoutOptions& opts = {});

/// The extraction half of layoutCell: extract parasitics from
/// `result.layout` and back-annotate them onto `net` into
/// `result.annotated`.  No-op when the geometry stage placed nothing.
void extractCell(const circuit::Netlist& net, const circuit::Process& proc,
                 CellLayoutResult& result);

}  // namespace amsyn::core
