// Staged flow engine: the hierarchical methodology of section 2.1 as a
// pluggable stage graph instead of one monolithic function.
//
// A FlowStage is one phase of the synthesis loop (topology selection,
// candidate planning, netlist build, verification, layout, extraction); a
// FlowEngine executes a declared stage sequence and owns everything that
// used to be inline control flow in core::synthesizeAmplifier:
//
//   * the redesign loop (attempt 0 .. maxRedesigns, early exit on success),
//   * margin-inflation retargeting — each attempt re-derives the spec
//     bounds handed to the sizer from *measured* corrections (RetargetRule
//     policy over the CalibrationStore) plus a growing safety factor,
//   * model-calibration feedback — verify stages record how far the
//     simulator lands from the equation model (pre-layout) and how much
//     the layout parasitics knock off on top (post-layout),
//   * per-stage observability: every stage runs under an AMSYN_SPAN,
//     counts into core.flow.stage.<name>.{runs,failures}, and appends a
//     StageRecord to FlowResult::stageRecords.
//
// The amplifier flow is amplifierStageGraph() run by a default-policy
// engine; tests and future circuit classes compose their own graphs (the
// calibration-loop test drives the engine with fabricated verify stages).
#pragma once

#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/context.hpp"
#include "core/flow.hpp"
#include "core/metrics.hpp"
#include "topology/library.hpp"

namespace amsyn::core {

/// Calibration source tags used by the built-in verify stages.
inline constexpr const char* kModelCalibration = "model";    ///< sim vs equation model
inline constexpr const char* kLayoutCalibration = "layout";  ///< post- vs pre-layout

/// Measured model-calibration state, replacing the monolith's loose local
/// doubles (ugfModelRatio / pmLayoutDelta / ...).  Two kinds of correction
/// per performance, each recorded per source so independent error terms
/// (modeling error, layout parasitics) compose:
///   * ratios  — multiplicative losses (measured/predicted); composed as a
///               product over sources, default 1.0,
///   * deltas  — additive losses in the performance's own unit; composed
///               as a sum over sources, default 0.0.
/// Re-recording a (performance, source) pair overwrites it: calibration
/// always reflects the latest measurement.
class CalibrationStore {
 public:
  void recordRatio(const std::string& perf, const std::string& source, double ratio) {
    ratios_[perf][source] = ratio;
  }
  void recordDelta(const std::string& perf, const std::string& source, double delta) {
    deltas_[perf][source] = delta;
  }

  /// Product of all recorded ratios for `perf` (1.0 when none).
  double ratio(const std::string& perf) const {
    double r = 1.0;
    if (const auto it = ratios_.find(perf); it != ratios_.end())
      for (const auto& [source, value] : it->second) {
        (void)source;
        r *= value;
      }
    return r;
  }

  /// Sum of all recorded deltas for `perf` (0.0 when none).
  double delta(const std::string& perf) const {
    double d = 0.0;
    if (const auto it = deltas_.find(perf); it != deltas_.end())
      for (const auto& [source, value] : it->second) {
        (void)source;
        d += value;
      }
    return d;
  }

  bool empty() const { return ratios_.empty() && deltas_.empty(); }

 private:
  std::map<std::string, std::map<std::string, double>> ratios_;
  std::map<std::string, std::map<std::string, double>> deltas_;
};

/// One engine-level retargeting rule: how a constraint bound is corrected
/// from the calibration store before each attempt.  The per-attempt safety
/// factor (1 + 0.05 * attempt) rides on top of the measured correction so
/// redesigns overshoot slightly rather than landing on the exact edge.
struct RetargetRule {
  std::string performance;
  sizing::SpecKind kind = sizing::SpecKind::GreaterEqual;
  enum class Correction {
    DivideByRatio,  ///< bound' = bound / max(ratio, ratioFloor) * safety
    AddDelta,       ///< bound' = min(bound + delta*safety + pad*attempt, cap)
  };
  Correction correction = Correction::DivideByRatio;
  double ratioFloor = 0.2;  ///< never inflate a bound more than 5x per ratio
  double boundCap = std::numeric_limits<double>::infinity();
  double perAttemptPad = 0.0;
};

/// One candidate design flowing between the candidate-provider, build, and
/// verify stages of an attempt.
struct CandidateDesign {
  std::string topology;
  std::vector<double> x;             ///< equation-model coordinates
  sizing::Performance predicted;     ///< model-predicted performances at x
  circuit::Netlist netlist;          ///< filled by BuildStage
  bool built = false;
};

/// Everything a stage may read or write while one flow runs.  Constructed
/// by the engine per run; per-attempt fields (target, candidates) are reset
/// by the engine at each attempt boundary.
struct DesignContext {
  DesignContext(const sizing::SpecSet& s, const circuit::Process& p,
                const FlowOptions& o)
      : specs(s), proc(p), opts(o) {}

  const sizing::SpecSet& specs;      ///< original, unretargeted specs
  const circuit::Process& proc;
  const FlowOptions& opts;
  std::size_t attempt = 0;
  sizing::SpecSet target;            ///< engine-retargeted specs (per attempt)
  sizing::SpecSet electrical;        ///< simulator-judged constraint subset
  std::vector<CandidateDesign> candidates;  ///< per attempt
  CalibrationStore calibration;      ///< persists across attempts
  FlowResult result;                 ///< accumulated output
  /// The job's wall-clock deadline budget, owned by the engine for the
  /// run's duration (null only before run() installs it).  Stages that do
  /// open-ended numerical work (the verify measurements) thread
  /// &jobBudget->budget() into their analyses so expiry interrupts them at
  /// the next strided cancel point; the engine itself checks expiry at
  /// every stage boundary.
  DeadlineBudget* jobBudget = nullptr;
  /// The execution context this flow runs under (installed by the engine;
  /// null only before run()).  Stages normally don't need it — the engine
  /// holds a ContextScope for the run, so ExecutionContext::current()
  /// already resolves here — but stages that hand work to foreign threads
  /// can capture it explicitly.
  ExecutionContext* exec = nullptr;
};

/// How a stage ended.  Failed aborts the attempt (detail/evalStatus become
/// FlowResult::failureReason/failureStatus); Skipped continues it.
struct StageOutcome {
  StageStatus status = StageStatus::Passed;
  std::string detail;
  EvalStatus evalStatus = EvalStatus::Ok;

  static StageOutcome pass() { return {}; }
  static StageOutcome skip(std::string why) {
    return {StageStatus::Skipped, std::move(why), EvalStatus::Ok};
  }
  static StageOutcome fail(std::string why, EvalStatus st = EvalStatus::Ok) {
    return {StageStatus::Failed, std::move(why), st};
  }
};

/// One phase of the synthesis loop.  Stages may keep per-run state (e.g. a
/// cached topology library); a stage object belongs to one engine and one
/// flow configuration at a time.
class FlowStage {
 public:
  virtual ~FlowStage() = default;
  virtual std::string name() const = 0;
  virtual StageOutcome run(DesignContext& ctx) = 0;
};

/// Executes a stage sequence with the redesign loop, retargeting, and
/// calibration feedback as policy.  Engines are cheap: construct one per
/// flow (synthesizeAmplifier does).
class FlowEngine {
 public:
  explicit FlowEngine(std::vector<std::unique_ptr<FlowStage>> stages);

  /// Replace the retargeting policy (defaults to defaultRetargetRules()).
  void setRetargetRules(std::vector<RetargetRule> rules);
  const std::vector<RetargetRule>& retargetRules() const { return rules_; }

  /// Run the flow: apply the eval-cache config, then execute the stage
  /// sequence up to opts.maxRedesigns + 1 times, retargeting the specs
  /// from the calibration store before each attempt.  Success means every
  /// stage of an attempt passed (or was skipped).
  FlowResult run(const sizing::SpecSet& specs, const circuit::Process& proc,
                 const FlowOptions& opts);

  /// Context-explicit overload: the whole run executes under `exec` (a
  /// ContextScope is installed for the duration) and the option appliers
  /// act on that context's handles.  The three-argument form above is
  /// exactly this with ExecutionContext::current().
  FlowResult run(const sizing::SpecSet& specs, const circuit::Process& proc,
                 const FlowOptions& opts, ExecutionContext& exec);

  /// The amplifier policy: ugf bounds divide by the measured
  /// model*layout ratio (floored at 0.2); pm bounds add the measured
  /// degree losses plus 2 degrees per attempt, capped at 80.
  static std::vector<RetargetRule> defaultRetargetRules();

  /// Apply `rules` over `cal` to `specs` for the given attempt (exposed
  /// for tests; run() calls this before each attempt).  Constraint bounds
  /// are corrected; objectives pass through unchanged.
  static sizing::SpecSet retarget(const sizing::SpecSet& specs,
                                  const std::vector<RetargetRule>& rules,
                                  const CalibrationStore& cal, std::size_t attempt);

 private:
  struct StageSlot {
    std::unique_ptr<FlowStage> stage;
    std::string spanName;           ///< "stage.<name>", stable for AMSYN_SPAN
    metrics::CounterId runs;
    metrics::CounterId failures;
  };
  std::vector<StageSlot> stages_;
  std::vector<RetargetRule> rules_;
};

// ---------------------------------------------------------------------------
// Concrete amplifier stages.  Exposed so tests and custom flows can compose
// their own graphs; amplifierStageGraph() assembles the standard sequence.

/// Optimizer candidate provider: interval-filter + rule-order the built-in
/// amplifier library, then optimization-based sizing against the retargeted
/// specs (topology::selectAndSize).  Appends at most one candidate; skips
/// when sizing fails (the plan provider may still deliver).
class TopologySelectStage : public FlowStage {
 public:
  std::string name() const override { return "topology-select"; }
  StageOutcome run(DesignContext& ctx) override;

 private:
  std::unique_ptr<topology::TopologyLibrary> library_;  ///< cached per run
  const circuit::Process* libraryProc_ = nullptr;
  double libraryLoadCap_ = 0.0;
  topology::TopologySpace librarySpace_ = topology::TopologySpace::Default;
};

/// Knowledge-based candidate provider: maps the retargeted bounds onto the
/// two-stage design plan's inputs (knowledge::opampPlanInputs) and executes
/// it (IDAC/OASYS-style; always well-proportioned, so the equation model
/// tracks the simulator closely on it).
class PlanCandidateStage : public FlowStage {
 public:
  std::string name() const override { return "plan-candidate"; }
  StageOutcome run(DesignContext& ctx) override;
};

/// Build a testbench netlist for every candidate via the per-topology
/// builder registry (sizing/builders.hpp).  Fails the attempt when no
/// candidate exists ("sizing failed to meet the specs") or a topology has
/// no registered builder.
class BuildStage : public FlowStage {
 public:
  std::string name() const override { return "build"; }
  StageOutcome run(DesignContext& ctx) override;
};

enum class VerifyPhase : std::uint8_t { PreLayout, PostLayout };

/// Simulation-based verification, parameterized on the phase:
///   * PreLayout — measure candidates in order against the electrical
///     specs; the first pass wins (falling back to the first candidate),
///     records model calibration (sim vs predicted) per measurement;
///   * PostLayout — measure the extracted/annotated netlist, record layout
///     calibration (post vs pre), pass/fail the attempt.
/// Probe node and AC grid come from FlowOptions::testbench.
class VerifyStage : public FlowStage {
 public:
  explicit VerifyStage(VerifyPhase phase) : phase_(phase) {}
  std::string name() const override {
    return phase_ == VerifyPhase::PreLayout ? "verify-pre-layout"
                                            : "verify-post-layout";
  }
  StageOutcome run(DesignContext& ctx) override;

 private:
  VerifyPhase phase_;
};

/// Cell layout (stacking, placement, routing) of the chosen schematic.
/// Fails the attempt when the placement overlaps or routing is incomplete
/// — the extraction stage is then skipped (nothing trustworthy to extract).
class LayoutStage : public FlowStage {
 public:
  std::string name() const override { return "layout"; }
  StageOutcome run(DesignContext& ctx) override;
};

/// Parasitic extraction + back-annotation of the laid-out cell onto the
/// schematic, producing the netlist the post-layout verify stage measures.
class ExtractStage : public FlowStage {
 public:
  std::string name() const override { return "extract"; }
  StageOutcome run(DesignContext& ctx) override;
};

/// The standard amplifier stage sequence (what synthesizeAmplifier runs):
/// topology-select, plan-candidate, build, verify-pre-layout, layout,
/// extract, verify-post-layout.
std::vector<std::unique_ptr<FlowStage>> amplifierStageGraph();

/// Apply a tri-state eval-cache config to a context's cache handle (called
/// by the engine at flow start and by synthesizeBatch before fan-out).  The
/// single-argument forms act on ExecutionContext::current() — for code with
/// no installed context that is the ambient context's shared handles, i.e.
/// the old process-wide behavior.
void applyEvalCacheOptions(const EvalCacheOptions& opts);
void applyEvalCacheOptions(const EvalCacheOptions& opts, ExecutionContext& ctx);

/// Apply a solver-kernel choice to a context's solver preference (same call
/// sites as applyEvalCacheOptions; Default is a no-op).
void applySolverOption(SolverOption opt);
void applySolverOption(SolverOption opt, ExecutionContext& ctx);

/// Apply a surrogate-screening choice to a context's store handle (same
/// call sites as applyEvalCacheOptions; Default is a no-op).  Always
/// touches the store so its core.surrogate.* counters register eagerly —
/// run-report schemas must match across modes.
void applySurrogateOption(SurrogateOption opt);
void applySurrogateOption(SurrogateOption opt, ExecutionContext& ctx);

}  // namespace amsyn::core
