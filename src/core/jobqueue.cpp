#include "core/jobqueue.hpp"

#include <chrono>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/metrics.hpp"
#include "core/parallel.hpp"
#include "core/runreport.hpp"
#include "core/trace.hpp"
#include "sim/fault.hpp"
#include "sim/stats.hpp"

namespace amsyn::core {

const char* jobStateName(JobState s) {
  switch (s) {
    case JobState::Queued: return "queued";
    case JobState::Running: return "running";
    case JobState::Succeeded: return "succeeded";
    case JobState::Failed: return "failed";
    case JobState::Rejected: return "rejected";
  }
  return "unknown";
}

namespace {

/// Registered eagerly (first queue construction) so the run-report counter
/// schema does not depend on which jobs ran.
struct JobCounters {
  metrics::CounterId submitted;
  metrics::CounterId admitted;
  metrics::CounterId rejected;
  metrics::CounterId succeeded;
  metrics::CounterId failed;
  metrics::CounterId retries;
  metrics::CounterId resumed;
  metrics::CounterId exceptions;
};
const JobCounters& jobCounters() {
  static const JobCounters ids = {
      metrics::registry().counter("core.jobs.submitted"),
      metrics::registry().counter("core.jobs.admitted"),
      metrics::registry().counter("core.jobs.rejected"),
      metrics::registry().counter("core.jobs.succeeded"),
      metrics::registry().counter("core.jobs.failed"),
      metrics::registry().counter("core.jobs.retries"),
      metrics::registry().counter("core.jobs.resumed"),
      metrics::registry().counter("core.jobs.exceptions"),
  };
  return ids;
}

JobJournalEntry toJournalEntry(const JobRecord& rec) {
  JobJournalEntry e;
  e.job = rec.index;
  e.attempts = rec.attempts;
  e.success = rec.result.success;
  e.topology = rec.result.topology;
  e.status = rec.result.failureStatus;
  e.failureReason = rec.result.failureReason;
  e.redesigns = rec.result.redesigns;
  return e;
}

JobRecord fromJournalEntry(const JobJournalEntry& e) {
  JobRecord rec;
  rec.index = e.job;
  rec.attempts = e.attempts;
  rec.fromJournal = true;
  rec.result.success = e.success;
  rec.result.topology = e.topology;
  rec.result.failureStatus = e.status;
  rec.result.failureReason = e.failureReason;
  rec.result.redesigns = e.redesigns;
  rec.state = e.success                              ? JobState::Succeeded
              : e.status == EvalStatus::Rejected     ? JobState::Rejected
                                                     : JobState::Failed;
  return rec;
}

}  // namespace

JobQueue::JobQueue(JobQueueOptions opts) : opts_(std::move(opts)) {
  (void)jobCounters();
}

JobRecord JobQueue::runOne(std::size_t index, const sizing::SpecSet& specs,
                           const circuit::Process& proc) {
  // One child context per job: same config/handles as the submitting
  // tenant's context (or ambient), its own metrics slice and fault schedule
  // falling back to the parent chain — so a tenant's armed chaos plan
  // governs its jobs but never its siblings'.
  const auto jobContext = ExecutionContext::current().makeChild();
  ContextScope contextScope(*jobContext);
  // Bind this job's fault-occurrence counters to whichever pool thread
  // picked it up; retries run inside the same scope so each attempt sees
  // fresh, deterministic draws.
  sim::BatchFaultScope faultScope(index);
  JobRecord rec;
  rec.index = index;
  rec.state = JobState::Running;

  FlowOptions fo = batchItemOptions(opts_.flow, index);
  if (opts_.deadlineMs != 0) fo.deadlineMs = opts_.deadlineMs;

  for (std::size_t attempt = 1;; ++attempt) {
    rec.attempts = attempt;
    FlowResult r;
    try {
      if (sim::takeBatchFault(sim::FaultSite::JobTask))
        throw std::runtime_error("injected job-task fault (chaos schedule)");
      FlowEngine engine(opts_.stageFactory ? opts_.stageFactory()
                                           : amplifierStageGraph());
      r = engine.run(specs, proc, fo);
    } catch (...) {
      // A throwing job is a failed record, never a lost batch.  bad_alloc
      // classifies as out_of_memory, which the retry policy hard-excludes.
      metrics::add(jobCounters().exceptions);
      r = FlowResult{};
      r.success = false;
      r.failureStatus = classifyCurrentException();
      r.failureReason = std::string("job task exception contained: ") +
                        evalStatusName(r.failureStatus);
    }
    rec.result = std::move(r);
    if (rec.result.success) {
      rec.state = JobState::Succeeded;
      return rec;
    }
    if (!opts_.retry.shouldRetry(rec.result.failureStatus, attempt)) {
      rec.state = JobState::Failed;
      return rec;
    }
    metrics::add(jobCounters().retries);
    const std::uint64_t delay = opts_.retry.backoff.delayMs(fo.seed, attempt);
    if (delay != 0) std::this_thread::sleep_for(std::chrono::milliseconds(delay));
  }
}

BatchRunResult JobQueue::run(const std::vector<sizing::SpecSet>& batch,
                             const circuit::Process& proc) {
  AMSYN_SPAN("job_queue");
  const auto& counters = jobCounters();
  metrics::add(counters.submitted, batch.size());
  applyEvalCacheOptions(opts_.flow.evalCache);
  applySolverOption(opts_.flow.solver);
  applySurrogateOption(opts_.flow.surrogate);

  BatchRunResult out;
  out.jobs.resize(batch.size());

  // Journal recovery: keep the longest valid prefix of complete lines and
  // rewrite the file to exactly that, so a torn tail from a crash can never
  // be concatenated onto by this run's appends.
  std::map<std::size_t, JobJournalEntry> journaled;
  std::optional<BatchJournal> journal;
  if (!opts_.journalPath.empty()) {
    journal.emplace(opts_.journalPath);
    if (opts_.resume) {
      journaled = BatchJournal::load(opts_.journalPath);
      for (auto it = journaled.begin(); it != journaled.end();)
        it = it->first >= batch.size() ? journaled.erase(it) : std::next(it);
    }
    journal->rewrite(journaled);
  }
  std::mutex journalMutex;
  const auto journalAppend = [&](const JobRecord& rec) {
    if (!journal) return;
    std::lock_guard<std::mutex> lock(journalMutex);
    journal->append(toJournalEntry(rec));
  };

  // Admission: a pure function of index and capacity — job i is admitted
  // iff i < maxPending — so a resumed run sheds exactly the jobs the full
  // run would have, and the final report is identical either way.
  const std::size_t cap = opts_.maxPending == 0 ? batch.size() : opts_.maxPending;
  std::vector<std::size_t> toRun;
  toRun.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (const auto it = journaled.find(i); it != journaled.end()) {
      out.jobs[i] = fromJournalEntry(it->second);
      ++out.resumed;
      metrics::add(counters.resumed);
      continue;
    }
    if (i >= cap) {
      JobRecord& rec = out.jobs[i];
      rec.index = i;
      rec.state = JobState::Rejected;
      rec.attempts = 0;
      rec.result.success = false;
      rec.result.failureStatus = EvalStatus::Rejected;
      rec.result.failureReason =
          "admission control: queue capacity " + std::to_string(cap) + " exceeded";
      ++out.rejected;
      metrics::add(counters.rejected);
      sim::recordEvalFailure(EvalStatus::Rejected);
      journalAppend(rec);
      continue;
    }
    out.jobs[i].index = i;
    toRun.push_back(i);
  }
  out.admitted = toRun.size();
  metrics::add(counters.admitted, toRun.size());

  parallelFor(toRun.size(), [&](std::size_t k) {
    const std::size_t i = toRun[k];
    JobRecord rec = runOne(i, batch[i], proc);
    journalAppend(rec);
    out.jobs[i] = std::move(rec);  // index-exclusive slot: no race
  });

  for (const auto& rec : out.jobs) {
    if (rec.fromJournal) continue;
    if (rec.state == JobState::Succeeded) metrics::add(counters.succeeded);
    if (rec.state == JobState::Failed) metrics::add(counters.failed);
    if (rec.attempts > 1) out.retried += rec.attempts - 1;
  }
  return out;
}

std::string batchRunReportJson(const BatchRunResult& result) {
  RunReport report;
  report.name = "jobs";
  report.includeMetrics = false;  // metrics differ between full and resumed
  report.includeSpans = false;    // runs; the report sticks to outcomes
  std::size_t succeeded = 0, failed = 0, rejected = 0;
  for (const auto& rec : result.jobs) {
    succeeded += rec.state == JobState::Succeeded ? 1 : 0;
    failed += rec.state == JobState::Failed ? 1 : 0;
    rejected += rec.state == JobState::Rejected ? 1 : 0;
  }
  report.addValue("jobs", static_cast<double>(result.jobs.size()))
      .addValue("succeeded", static_cast<double>(succeeded))
      .addValue("failed", static_cast<double>(failed))
      .addValue("rejected", static_cast<double>(rejected));
  for (const auto& rec : result.jobs) {
    const std::string prefix = "job." + std::to_string(rec.index) + ".";
    report.addInfo(prefix + "state", jobStateName(rec.state));
    report.addInfo(prefix + "topology", rec.result.topology);
    report.addInfo(prefix + "status", evalStatusName(rec.result.failureStatus));
    report.addInfo(prefix + "failure_reason", rec.result.failureReason);
    report.addValue(prefix + "success", rec.result.success ? 1.0 : 0.0);
    report.addValue(prefix + "attempts", static_cast<double>(rec.attempts));
    report.addValue(prefix + "redesigns", static_cast<double>(rec.result.redesigns));
  }
  return report.toJson();
}

BatchRunResult runBatchResilient(const std::vector<sizing::SpecSet>& batch,
                                 const circuit::Process& proc,
                                 const JobQueueOptions& opts) {
  return JobQueue(opts).run(batch, proc);
}

}  // namespace amsyn::core
