// Job-level resilience primitives for the synthesis service substrate:
//
//   * RetryPolicy / BackoffPolicy — deterministic, data-expressed retry
//     with seeded exponential backoff, layered per stage (FlowEngine) and
//     per job (core/jobqueue.hpp).  Like PR-5's RetargetRule, the policy is
//     data so tests and the future daemon can reason about it without
//     subclassing anything.
//   * DeadlineBudget — wall-clock deadlines composed on top of PR-2's
//     deterministic work-unit EvalBudget: the budget keeps bit-identical
//     exhaustion points, the deadline adds a strided monotonic-clock check
//     so a livelocked evaluation cannot hang a worker past its allowance.
//   * BatchJournal — crash-consistent per-job progress journaling as JSON
//     lines, so a killed batch resumes from its last completed job.  Lines
//     carry an FNV-1a checksum and are accepted only when complete and
//     intact; a journal truncated at ANY byte boundary loads the longest
//     valid prefix (tests/resilience_test.cpp proves the property
//     exhaustively).
//
// Layering: below core/flow.hpp (which embeds a RetryPolicy in
// FlowOptions) and above only core/evalstatus.hpp + numeric/rng.hpp.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/evalstatus.hpp"
#include "numeric/rng.hpp"

namespace amsyn::core {

/// Seeded exponential backoff: delayMs(seed, retry) for retry = 1, 2, ...
/// grows initialMs * multiplier^(retry-1), capped at maxMs, with an
/// optional deterministic jitter drawn from SplitMix64 over (seed, retry).
/// A pure function of its arguments — two runs with the same seed back off
/// identically, which is what keeps chaos soak runs bit-reproducible.
struct BackoffPolicy {
  std::uint64_t initialMs = 10;
  double multiplier = 2.0;
  std::uint64_t maxMs = 1000;
  /// Jitter fraction in [0, 1]: the delay is scaled by a deterministic
  /// factor in [1 - jitter, 1].  Jitter decorrelates retry storms across
  /// jobs (each job seeds with its own stream) without sacrificing
  /// reproducibility.
  double jitter = 0.0;

  std::uint64_t delayMs(std::uint64_t seed, std::size_t retry) const;

  static BackoffPolicy none() { return {0, 1.0, 0, 0.0}; }
};

/// Data-expressed retry policy.  `maxAttempts` counts total attempts (1 =
/// no retries); `retryableStatuses` empty means "the taxonomy default"
/// (core::isRetryable).  OutOfMemory is hard-excluded: retrying an
/// allocation failure amplifies the overload that caused it, so OOM is
/// never classified retryable even when a caller lists it.
struct RetryPolicy {
  std::size_t maxAttempts = 1;
  std::vector<EvalStatus> retryableStatuses;
  BackoffPolicy backoff;

  /// Whether a failure with status `st` after `attemptsSoFar` total
  /// attempts should be retried.
  bool shouldRetry(EvalStatus st, std::size_t attemptsSoFar) const;

  static RetryPolicy none() { return {}; }
  /// Retry every transient (isRetryable) status up to `attempts` total
  /// attempts with the default backoff.
  static RetryPolicy transient(std::size_t attempts) {
    RetryPolicy p;
    p.maxAttempts = attempts;
    return p;
  }
};

/// Wall-clock deadline composed over the deterministic work-unit budget.
/// Construction arms the composed EvalBudget with `now + deadlineMs`
/// (deadlineMs = 0 leaves it a plain budget).  Two check cadences:
///   * expired() — one clock read; for coarse cooperative checkpoints
///     (FlowEngine stage boundaries, job-queue scheduling points),
///   * budget().consume() — the Newton-loop cancel points, where the clock
///     is read once per EvalBudget::kDeadlineCheckStride charges.
class DeadlineBudget {
 public:
  explicit DeadlineBudget(std::uint64_t workLimit = 0, std::uint64_t deadlineMs = 0)
      : budget_(workLimit), deadlineMs_(deadlineMs) {
    if (deadlineMs != 0) {
      deadlineNs_ =
          EvalBudget::nowNs() + static_cast<std::int64_t>(deadlineMs) * 1'000'000;
      budget_.setDeadlineNs(deadlineNs_);
    }
  }

  EvalBudget& budget() { return budget_; }
  const EvalBudget& budget() const { return budget_; }

  bool armed() const { return deadlineNs_ != 0; }
  std::int64_t deadlineNs() const { return deadlineNs_; }
  std::uint64_t deadlineMs() const { return deadlineMs_; }

  /// One clock read; latches the budget's deadline flag so a
  /// boundary-detected expiry and a cancel-point-detected expiry report the
  /// same exhaustionStatus().
  bool expired() { return armed() && budget_.checkDeadline(); }

 private:
  EvalBudget budget_;
  std::uint64_t deadlineMs_ = 0;
  std::int64_t deadlineNs_ = 0;
};

/// The job deadline in effect: `optionMs` when nonzero, else the
/// AMSYN_JOB_DEADLINE_MS environment variable, else 0 (no deadline).
std::uint64_t effectiveDeadlineMs(std::uint64_t optionMs);

// ---------------------------------------------------------------------------
// Crash-consistent batch journaling

/// One completed job, as journaled and as reported: exactly the fields of
/// the per-job section of core::batchRunReportJson, so a resumed batch
/// reproduces the same final report without re-running journaled jobs.
struct JobJournalEntry {
  std::size_t job = 0;       ///< batch index
  std::size_t attempts = 1;  ///< total flow attempts the job consumed
  bool success = false;
  std::string topology;
  EvalStatus status = EvalStatus::Ok;  ///< FlowResult::failureStatus
  std::string failureReason;
  std::size_t redesigns = 0;

  bool operator==(const JobJournalEntry&) const = default;

  /// One self-delimiting JSON line (no trailing newline): flat object with
  /// a final "crc" field — FNV-1a 64 over every byte before `,"crc"` — so
  /// a torn or bit-rotted line is detectable without trusting the parser.
  std::string toLine() const;
  /// Parse one line; nullopt when incomplete, malformed, or checksum-bad.
  static std::optional<JobJournalEntry> parseLine(const std::string& line);
};

/// Append-only JSON-lines journal of completed jobs.  Protocol:
///   1. load(path) reads the longest valid prefix of complete, intact
///      lines (a crash can only tear the final line; anything after the
///      first invalid line is discarded),
///   2. the runner rewrites the journal to exactly that prefix (dropping a
///      torn tail so later appends cannot concatenate onto it), then
///   3. append() writes one line + '\n' per completed job and flushes.
/// Appends from multiple pool threads must be serialized by the caller
/// (core/jobqueue.cpp holds a mutex); entries may land in any job order.
class BatchJournal {
 public:
  explicit BatchJournal(std::string path) : path_(std::move(path)) {}

  /// Valid entries by job index (later duplicates win; none are produced
  /// by the runner, but a resumed journal is data, not gospel).  A missing
  /// file is an empty journal, not an error.
  static std::map<std::size_t, JobJournalEntry> load(const std::string& path);

  /// Rewrite the file to exactly `entries` (the compacted valid prefix).
  void rewrite(const std::map<std::size_t, JobJournalEntry>& entries) const;

  /// Append one completed job and flush.
  void append(const JobJournalEntry& entry) const;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

}  // namespace amsyn::core
