// Structured JSON run reports: one schema shared by the flow
// (core::flowRunReportJson), the bench_claim_* binaries (BENCH_*.json), and
// tests.  A report combines caller-supplied identity/values with a snapshot
// of the metrics registry (core/metrics.hpp) and the trace span aggregate
// (core/trace.hpp):
//
//   {
//     "report": "<name>",
//     "info":       { "<key>": "<string>", ... },
//     "values":     { "<key>": <number>, ... },
//     "counters":   { "<metric>": <integer>, ... },
//     "gauges":     { "<metric>": <number>, ... },
//     "histograms": { "<metric>": {"count":..,"sum":..,"min":..,"max":..} },
//     "spans":      { "<path>": {"count":..,"total_s":..,"min_s":..,
//                                "max_s":..,"deltas":{"<metric>":..}} }
//   }
//
// Emission is deterministic given the same data: keys are sorted (std::map)
// or in insertion order (info/values), and doubles print with max_digits10
// so the JSON round-trips to the exact same bits.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace amsyn::core {

struct RunReport {
  std::string name;  ///< the "report" field
  /// Free-form string facts (topology chosen, failure reason, ...), emitted
  /// in insertion order.
  std::vector<std::pair<std::string, std::string>> info;
  /// Numeric results (phase ratios, speedups, ...), emitted in insertion
  /// order.
  std::vector<std::pair<std::string, double>> values;
  bool includeMetrics = true;  ///< emit the registry snapshot
  bool includeSpans = true;    ///< emit the trace span aggregate

  RunReport& addInfo(std::string key, std::string value);
  RunReport& addValue(std::string key, double value);
  /// numerator/denominator, except a zero denominator records NaN — which
  /// toJson() emits as null.  "No traffic" must not masquerade as "0% rate":
  /// a 0.0 would read as a real measurement (e.g. a cache that always
  /// missed) when in fact nothing was measured at all.
  RunReport& addRatio(std::string key, double numerator, double denominator);

  std::string toJson() const;
  /// Write toJson() to `path` (trailing newline included).
  void write(const std::string& path) const;
};

/// JSON fragment helpers shared with the benches.
std::string jsonEscape(const std::string& s);
/// Round-trip-exact double formatting (max_digits10; nan/inf become null).
std::string jsonNumber(double v);

}  // namespace amsyn::core
