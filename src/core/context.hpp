// Scoped execution contexts: the explicit object behind every piece of
// state that PRs 3–9 left process-global (metrics attribution, eval-cache
// and surrogate handles, solver-mode preference, batch fault plans, env
// tuning knobs).  One process serving many synthesis jobs — the ROADMAP's
// synthesis-as-a-service daemon — needs those separated per tenant/job;
// a single-flow CLI run should not have to know contexts exist.  Both are
// served by the same mechanism:
//
//   * The *ambient* context is a lazily-created, process-lifetime default
//     whose config snapshot comes from the AMSYN_* environment and whose
//     cache/surrogate handles are the legacy shared singletons.  Code that
//     never installs a context resolves everything through it, which makes
//     every pre-context entry point behave exactly as before.
//   * An *explicit* context carries its own config, solver preference,
//     fault schedule, and metrics slice; optionally its own (isolated)
//     eval cache and surrogate store.  Installing it with ContextScope
//     makes ExecutionContext::current() — and therefore every subsystem
//     that resolves through it — see that context on the installing
//     thread.  parallelFor propagates the submitting thread's context into
//     pool tasks, so a context follows its job across work-stealing.
//
// What stays process-shared on purpose: the metrics registry storage
// (slices are additive observers, never the source of truth — process
// totals stay thread-count-invariant and bit-identical with or without
// slicing), the sparse-solver symbolic cache (pure speed, keyed by
// structure), and — by default — the eval cache and surrogate store, whose
// cross-job amortization is their whole point.  What is per-context: the
// config snapshot, solver-mode preference, batch fault schedule, metrics
// slice, and any handle the owner asked to isolate.
//
// Layering: amsyn_context sits directly above amsyn_metrics /
// amsyn_evalcache / amsyn_surrogate and below everything else (parallel,
// sim, sizing, topology, manufacture, core).  It must not depend on the
// thread pool, which is why propagation lives in parallel.hpp, not here.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "core/evalcache.hpp"
#include "core/metrics.hpp"
#include "core/surrogate.hpp"

namespace amsyn::core {

/// Linear-solver preference, mirrored by sim::SolverMode (the sim layer
/// maps between the two; this enum exists so amsyn_context stays below
/// amsyn_sim).
enum class SolverKind : std::uint8_t { Auto, Dense, Sparse };

/// Topology-space selection, mirrored by topology::TopologySpace's
/// Legacy/Generated alternatives (same layering reason as SolverKind).
enum class TopologySpaceKind : std::uint8_t { Legacy, Generated };

/// One immutable snapshot of every AMSYN_* tuning knob.  fromEnv() is the
/// only production reader of those variables (via core/envknobs.hpp);
/// everything downstream consumes the snapshot through its context, so a
/// daemon can hand different configs to different jobs without touching
/// the environment.
struct ContextConfig {
  /// AMSYN_THREADS (0 = use hardware concurrency).
  std::size_t threads = 0;
  /// AMSYN_SOLVER.
  SolverKind solver = SolverKind::Auto;
  /// AMSYN_EVAL_CACHE / _CAPACITY / _QUANTUM.
  bool evalCacheEnabled = true;
  std::size_t evalCacheCapacity = std::size_t{1} << 16;
  double evalCacheQuantum = 0.0;
  /// AMSYN_SURROGATE.
  surrogate::Mode surrogateMode = surrogate::Mode::Off;
  /// AMSYN_JOB_DEADLINE_MS (0 = no deadline).
  std::uint64_t jobDeadlineMs = 0;
  /// AMSYN_TOPOLOGY_SPACE.
  TopologySpaceKind topologySpace = TopologySpaceKind::Legacy;

  static ContextConfig fromEnv();
};

/// Which handles an explicit context owns privately instead of sharing
/// with the process (see the file comment for why sharing is the default).
struct ContextIsolation {
  bool evalCache = false;
  bool surrogate = false;
};

/// Per-context batch fault schedule — the scoped replacement for the old
/// process-global armed plan in sim/fault.cpp.  Sized independently of
/// sim::kFaultSiteCount (static_assert'd there) so this header stays below
/// the sim layer.
struct FaultScheduleState {
  static constexpr std::size_t kMaxSites = 16;
  std::atomic<bool> armed{false};
  std::uint64_t seed = 1;
  std::array<double, kMaxSites> rates{};
};

class ExecutionContext {
 public:
  /// An explicit context.  Root contexts are independent of each other and
  /// of the ambient context: their fault schedules never chain anywhere and
  /// their metric slices have no parent.
  explicit ExecutionContext(ContextConfig cfg = ContextConfig::fromEnv(),
                            ContextIsolation isolation = {});
  ~ExecutionContext();
  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;

  /// The process-default context: config snapshotted from the environment
  /// on first use, shared cache/surrogate handles, no metrics slice (so
  /// un-scoped code pays one thread-local null check and nothing else).
  /// Created lazily and leaked, like the registry.
  static ExecutionContext& ambient();

  /// The calling thread's installed context (innermost ContextScope), or
  /// ambient() when none is installed.
  static ExecutionContext& current();

  /// The installed context without the ambient fallback (nullptr = none).
  static ExecutionContext* scoped();

  /// A child for one job within this context: same config and handles,
  /// solver preference copied from the parent's current value, its own
  /// fault schedule (falling back to the parent chain until armed locally),
  /// and a metrics slice chained under the parent's — a delta recorded in
  /// the job also shows up in the owning tenant's slice.  The child must
  /// not outlive its parent.
  std::unique_ptr<ExecutionContext> makeChild();

  const ContextConfig& config() const { return config_; }

  /// Context-resolved handles: the shared process singletons unless this
  /// context was built with isolation.
  cache::EvalCache& evalCache() { return *evalCache_; }
  surrogate::Store& surrogateStore() { return *surrogateStore_; }
  bool hasIsolatedEvalCache() const { return ownedEvalCache_ != nullptr; }
  bool hasIsolatedSurrogate() const { return ownedSurrogate_ != nullptr; }

  /// Per-context solver preference (initialized from config; mutable so
  /// FlowOptions::solver can override per run without leaking into other
  /// contexts).
  SolverKind solverKind() const { return solver_.load(std::memory_order_relaxed); }
  void setSolverKind(SolverKind k) { solver_.store(k, std::memory_order_relaxed); }

  /// This context's own fault schedule (written by sim::armBatchFaults).
  FaultScheduleState& faultSchedule() { return faultSchedule_; }
  /// The armed schedule governing this context: its own if armed, else the
  /// nearest armed ancestor's, else nullptr.  Sibling contexts therefore
  /// never see each other's plans.
  const FaultScheduleState* armedFaultSchedule() const;

  /// This context's metric slice (nullptr for the ambient context).
  metrics::ContextSlice* metricsSlice() { return slice_.get(); }
  /// Name -> delta for counters recorded under this context (empty map for
  /// the ambient context, which deliberately records no slice).
  std::map<std::string, std::uint64_t> sliceCounters() const;

 private:
  ExecutionContext(ContextConfig cfg, ContextIsolation isolation,
                   ExecutionContext* parent, bool isAmbient);

  ContextConfig config_;
  ExecutionContext* parent_ = nullptr;
  std::unique_ptr<cache::EvalCache> ownedEvalCache_;
  std::unique_ptr<surrogate::Store> ownedSurrogate_;
  cache::EvalCache* evalCache_ = nullptr;
  surrogate::Store* surrogateStore_ = nullptr;
  std::atomic<SolverKind> solver_{SolverKind::Auto};
  FaultScheduleState faultSchedule_;
  std::unique_ptr<metrics::ContextSlice> slice_;
};

/// Installs a context as the calling thread's current one (and its metrics
/// slice as the thread's active slice) for the scope's lifetime.  Nesting
/// restores the previous context on exit; the innermost scope wins.
class ContextScope {
 public:
  explicit ContextScope(ExecutionContext& ctx);
  ~ContextScope();
  ContextScope(const ContextScope&) = delete;
  ContextScope& operator=(const ContextScope&) = delete;

 private:
  ExecutionContext* prev_;
  metrics::SliceScope sliceScope_;
};

/// Shorthands for the hot call sites (sizing::safeEvaluate, cache-key
/// builders, surrogate consumers).
inline cache::EvalCache& currentEvalCache() {
  return ExecutionContext::current().evalCache();
}
inline surrogate::Store& currentSurrogateStore() {
  return ExecutionContext::current().surrogateStore();
}

}  // namespace amsyn::core
