#include "core/runreport.hpp"

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

#include "core/metrics.hpp"
#include "core/trace.hpp"

namespace amsyn::core {

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string jsonNumber(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no nan/inf
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << v;
  return os.str();
}

RunReport& RunReport::addInfo(std::string key, std::string value) {
  info.emplace_back(std::move(key), std::move(value));
  return *this;
}

RunReport& RunReport::addValue(std::string key, double value) {
  values.emplace_back(std::move(key), value);
  return *this;
}

RunReport& RunReport::addRatio(std::string key, double numerator, double denominator) {
  return addValue(std::move(key), denominator == 0.0
                                      ? std::numeric_limits<double>::quiet_NaN()
                                      : numerator / denominator);
}

namespace {

/// Comma-separated key/value emission with shared indentation.
class ObjectWriter {
 public:
  ObjectWriter(std::ostringstream& os, const char* indent) : os_(os), indent_(indent) {}
  void field(const std::string& key, const std::string& rawValue) {
    if (!first_) os_ << ",\n";
    first_ = false;
    os_ << indent_ << '"' << jsonEscape(key) << "\": " << rawValue;
  }
  bool empty() const { return first_; }

 private:
  std::ostringstream& os_;
  const char* indent_;
  bool first_ = true;
};

}  // namespace

std::string RunReport::toJson() const {
  std::ostringstream os;
  os << "{\n  \"report\": \"" << jsonEscape(name) << "\"";

  os << ",\n  \"info\": {\n";
  {
    ObjectWriter w(os, "    ");
    for (const auto& [k, v] : info) w.field(k, '"' + jsonEscape(v) + '"');
  }
  os << "\n  }";

  os << ",\n  \"values\": {\n";
  {
    ObjectWriter w(os, "    ");
    for (const auto& [k, v] : values) w.field(k, jsonNumber(v));
  }
  os << "\n  }";

  if (includeMetrics) {
    const auto snap = metrics::registry().snapshot();
    os << ",\n  \"counters\": {\n";
    {
      ObjectWriter w(os, "    ");
      for (const auto& [k, v] : snap.counters) w.field(k, std::to_string(v));
    }
    os << "\n  }";
    os << ",\n  \"gauges\": {\n";
    {
      ObjectWriter w(os, "    ");
      for (const auto& [k, v] : snap.gauges) w.field(k, jsonNumber(v));
    }
    os << "\n  }";
    os << ",\n  \"histograms\": {\n";
    {
      ObjectWriter w(os, "    ");
      for (const auto& [k, h] : snap.histograms) {
        std::ostringstream hs;
        hs << "{\"count\": " << h.count << ", \"sum\": " << jsonNumber(h.sum)
           << ", \"min\": " << jsonNumber(h.min) << ", \"max\": " << jsonNumber(h.max)
           << "}";
        w.field(k, hs.str());
      }
    }
    os << "\n  }";
  }

  if (includeSpans) {
    const auto spans = trace::collect();
    auto& reg = metrics::registry();
    os << ",\n  \"spans\": {\n";
    {
      ObjectWriter w(os, "    ");
      for (const auto& [path, s] : spans) {
        std::ostringstream ss;
        ss << "{\"count\": " << s.count << ", \"total_s\": "
           << jsonNumber(static_cast<double>(s.totalNs) * 1e-9) << ", \"min_s\": "
           << jsonNumber(s.count ? static_cast<double>(s.minNs) * 1e-9 : 0.0)
           << ", \"max_s\": " << jsonNumber(static_cast<double>(s.maxNs) * 1e-9)
           << ", \"deltas\": {";
        bool firstDelta = true;
        for (std::size_t i = 0; i < s.counterDeltas.size(); ++i) {
          if (s.counterDeltas[i] == 0) continue;
          if (!firstDelta) ss << ", ";
          firstDelta = false;
          ss << '"' << jsonEscape(reg.counterName(static_cast<std::uint32_t>(i)))
             << "\": " << s.counterDeltas[i];
        }
        ss << "}}";
        w.field(path, ss.str());
      }
    }
    os << "\n  }";
  }

  os << "\n}";
  return os.str();
}

void RunReport::write(const std::string& path) const {
  std::ofstream out(path);
  out << toJson() << "\n";
}

}  // namespace amsyn::core
