#include "core/threadpool.hpp"

#include <string>

#include "core/envknobs.hpp"

namespace amsyn::core {

namespace {

// Identity of the current thread within a pool, set by workerLoop.  A thread
// belongs to at most one pool for its whole lifetime.
thread_local ThreadPool* tlPool = nullptr;
thread_local std::size_t tlIndex = 0;

std::atomic<ThreadPool*> gOverride{nullptr};

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = configuredThreads();
  local_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) local_.push_back(std::make_unique<TaskQueue>());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(sleepMutex_);
    stop_.store(true);
  }
  sleepCv_.notify_all();
  for (auto& w : workers_) w.join();
  // Workers drain their queues before exiting, but a task submitted by the
  // very last task to run could still be queued: run stragglers here.
  while (tryRunOneTask()) {
  }
}

std::size_t ThreadPool::configuredThreads() {
  if (const std::size_t n = envknobs::threads(); n > 0) return n;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? hw : 1;
}

ThreadPool& ThreadPool::global() {
  if (ThreadPool* o = gOverride.load(std::memory_order_acquire)) return *o;
  static ThreadPool pool;
  return pool;
}

ThreadPool* ThreadPool::setGlobal(ThreadPool* pool) {
  return gOverride.exchange(pool, std::memory_order_acq_rel);
}

bool ThreadPool::isWorkerThread() const { return tlPool == this; }

void ThreadPool::submit(std::function<void()> task) {
  {
    // Increment before pushing, under sleepMutex_, so (a) a worker between
    // its predicate check and its cv block cannot miss the wake-up and (b) a
    // concurrent pop can never drive the counter below zero.
    std::lock_guard<std::mutex> lk(sleepMutex_);
    queued_.fetch_add(1);
  }
  TaskQueue& q = (tlPool == this) ? *local_[tlIndex] : inject_;
  {
    std::lock_guard<std::mutex> lk(q.mutex);
    q.tasks.push_back(std::move(task));
  }
  sleepCv_.notify_one();
}

bool ThreadPool::popLocal(std::size_t self, std::function<void()>& out) {
  TaskQueue& q = *local_[self];
  std::lock_guard<std::mutex> lk(q.mutex);
  if (q.tasks.empty()) return false;
  out = std::move(q.tasks.back());  // LIFO: most recently pushed, cache-warm
  q.tasks.pop_back();
  return true;
}

bool ThreadPool::popShared(std::size_t self, std::function<void()>& out) {
  {
    std::lock_guard<std::mutex> lk(inject_.mutex);
    if (!inject_.tasks.empty()) {
      out = std::move(inject_.tasks.front());
      inject_.tasks.pop_front();
      return true;
    }
  }
  const std::size_t n = local_.size();
  for (std::size_t k = 1; k <= n; ++k) {
    const std::size_t victim = (self + k) % n;
    if (victim == self) continue;
    TaskQueue& q = *local_[victim];
    std::lock_guard<std::mutex> lk(q.mutex);
    if (!q.tasks.empty()) {
      out = std::move(q.tasks.front());  // FIFO cold end: oldest task
      q.tasks.pop_front();
      return true;
    }
  }
  return false;
}

bool ThreadPool::tryRunOneTask() {
  std::function<void()> task;
  const bool worker = (tlPool == this);
  const std::size_t self = worker ? tlIndex : local_.size();
  if ((worker && popLocal(self, task)) || popShared(self, task)) {
    queued_.fetch_sub(1);
    task();
    return true;
  }
  return false;
}

void ThreadPool::workerLoop(std::size_t self) {
  tlPool = this;
  tlIndex = self;
  std::function<void()> task;
  while (true) {
    if (popLocal(self, task) || popShared(self, task)) {
      queued_.fetch_sub(1);
      task();
      task = nullptr;
      continue;
    }
    std::unique_lock<std::mutex> lk(sleepMutex_);
    if (stop_.load() && queued_.load() == 0) return;
    sleepCv_.wait(lk, [&] { return stop_.load() || queued_.load() > 0; });
    if (stop_.load() && queued_.load() == 0) return;
  }
}

}  // namespace amsyn::core
