#include "core/assemble.hpp"

#include <algorithm>

namespace amsyn::core {

AssembleResult assembleSystem(const std::vector<layout::Block>& blocks,
                              const std::vector<SystemSignal>& signals,
                              const std::map<std::string, SystemBlockPower>& power,
                              const circuit::Process& proc, const AssembleOptions& opts) {
  AssembleResult result;

  // --- block nets for the floorplanner's wirelength term ---
  std::vector<layout::BlockNet> blockNets;
  for (const auto& s : signals) blockNets.push_back({s.name, s.blocks});

  // --- WRIGHT floorplan ---
  layout::FloorplanOptions fpOpts = opts.floorplan;
  fpOpts.seed = opts.seed;
  result.floorplan = layout::wrightFloorplan(blocks, blockNets, fpOpts);

  // --- channel graph + WREN global routing ---
  result.channelGraph = layout::channelGraphFromFloorplan(result.floorplan);
  std::vector<layout::GlobalNet> gnets;
  for (const auto& s : signals) {
    layout::GlobalNet gn;
    gn.name = s.name;
    gn.wireClass = s.wireClass;
    gn.noiseBudget = s.noiseBudget;
    for (const auto& b : s.blocks)
      gn.terminals.push_back(result.floorplan.block(b).rect.center());
    gnets.push_back(std::move(gn));
  }
  result.globalRouting = layout::wrenGlobalRoute(result.channelGraph, gnets, opts.global);

  result.allSignalsRouted = true;
  for (const auto& [net, ok] : result.globalRouting.routed)
    if (!ok) result.allSignalsRouted = false;
  result.allSnrBudgetsMet = true;
  for (const auto& [net, ok] : result.globalRouting.snrMet)
    if (!ok) result.allSnrBudgetsMet = false;

  // --- detailed channel routing with the mapper's directives ---
  // Build per-channel pin problems from the nets crossing each edge.
  std::map<std::size_t, std::vector<layout::ChannelPin>> pinsOf;
  std::map<std::size_t, std::vector<layout::ChannelNetSpec>> specsOf;
  for (const auto& s : signals) {
    auto it = result.globalRouting.routeOf.find(s.name);
    if (it == result.globalRouting.routeOf.end()) continue;
    int col = 0;
    for (std::size_t e : it->second) {
      // The net enters and leaves every channel it crosses: two pins, with
      // positions spread by net index to create a realistic pin problem.
      pinsOf[e].push_back({s.name, col, true});
      pinsOf[e].push_back({s.name, col + 3, false});
      specsOf[e].push_back({s.name, s.wireClass, 1});
      col += 2;
    }
  }
  std::map<std::size_t, layout::ChannelOptions> chanOpts;
  for (const auto& d : result.globalRouting.directives) {
    auto& co = chanOpts[d.edge];
    co.classSeparationTracks = std::max(co.classSeparationTracks,
                                        1 + d.extraSeparationTracks);
    co.insertShields = co.insertShields || d.shield;
  }
  for (const auto& [edge, pins] : pinsOf) {
    layout::ChannelOptions co;
    if (auto it = chanOpts.find(edge); it != chanOpts.end()) co = it->second;
    result.channels[edge] = layout::routeChannel(pins, specsOf[edge], co);
  }

  // --- RAIL power grid over the floorplan ---
  power::PowerGridSpec spec;
  spec.chip = result.floorplan.chipBox;
  spec.rows = opts.powerGridRows;
  spec.cols = opts.powerGridCols;
  spec.vdd = proc.vdd;
  spec.pads = {{{spec.chip.x0, spec.chip.y0}, 0.5, 5e-9},
               {{spec.chip.x1, spec.chip.y1}, 0.5, 5e-9}};
  for (const auto& b : blocks) {
    SystemBlockPower bp;
    if (auto it = power.find(b.name); it != power.end()) bp = it->second;
    power::BlockLoad load;
    load.name = b.name;
    load.rect = result.floorplan.block(b.name).rect;
    load.avgCurrent = bp.avgCurrent;
    load.peakCurrent = bp.peakCurrent;
    load.decouplingCap = bp.decouplingCap;
    load.analog = b.isAnalog();
    spec.loads.push_back(std::move(load));
  }
  power::PowerGrid grid(spec, proc);
  power::applyUniformWidth(grid, opts.initialGridWidth);
  result.powerBefore = grid.analyze();
  const auto rail = power::synthesizePowerGrid(grid, opts.railConstraints, proc, opts.rail);
  result.powerAfter = rail.final;
  result.powerConstraintsMet = rail.constraintsMet;

  bool channelsOk = true;
  for (const auto& [edge, cr] : result.channels) {
    (void)edge;
    if (!cr.routable) channelsOk = false;
  }
  result.success = result.floorplan.overlapFree && result.allSignalsRouted &&
                   result.allSnrBudgetsMet && channelsOk && result.powerConstraintsMet;
  return result;
}

}  // namespace amsyn::core
