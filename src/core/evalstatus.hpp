// Structured failure taxonomy and deterministic work budget for candidate
// evaluations.  The synthesis frontend is an optimization loop over
// thousands of candidate designs, and its central robustness requirement is
// that a bad candidate — unconverged bias point, singular Jacobian, NaN
// iterate, runaway transient — becomes *infeasible data*, never a crash.
// Every analysis result and every Performance map carries one of these
// reason codes so the sizing cost, corner search, and flow report *why* a
// point failed.
//
// Header-only on purpose: like core/parallel.hpp this sits below the
// evaluation libraries in the dependency order (amsyn_sim and amsyn_sizing
// include it without linking amsyn_core).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace amsyn::core {

/// Why a candidate evaluation (or one analysis inside it) failed.  `Ok`
/// means the result is trustworthy; everything else marks the result
/// infeasible for the optimizer while remaining an ordinary value.
enum class EvalStatus : std::uint8_t {
  Ok = 0,
  DcNoConvergence,   ///< Newton + continuation ladder all failed to converge
  SingularJacobian,  ///< LU factorization hit a numerically singular matrix
  NanDetected,       ///< NaN/Inf appeared in an iterate, residual, or score
  BudgetExhausted,   ///< the evaluation ran out of Newton-iteration work units
  BadTopology,       ///< the candidate could not even be built into a netlist
  NoAcCrossing,      ///< AC response never crossed unity gain (no ugf/pm)
  InternalError,     ///< an exception escaped the evaluator and was contained
  kCount,            ///< number of reason codes (for counter arrays)
};

inline constexpr std::size_t kEvalStatusCount =
    static_cast<std::size_t>(EvalStatus::kCount);

/// Stable snake_case reason-code string (what FlowResult::failureReason and
/// reports print).
inline constexpr const char* evalStatusName(EvalStatus s) {
  switch (s) {
    case EvalStatus::Ok: return "ok";
    case EvalStatus::DcNoConvergence: return "dc_no_convergence";
    case EvalStatus::SingularJacobian: return "singular_jacobian";
    case EvalStatus::NanDetected: return "nan_detected";
    case EvalStatus::BudgetExhausted: return "budget_exhausted";
    case EvalStatus::BadTopology: return "bad_topology";
    case EvalStatus::NoAcCrossing: return "no_ac_crossing";
    case EvalStatus::InternalError: return "internal_error";
    case EvalStatus::kCount: break;
  }
  return "unknown";
}

/// Deterministic evaluation budget measured in Newton-iteration work units —
/// never wall clock, so an evaluation that exhausts its budget does so at
/// the same iterate regardless of machine speed or thread count, and the
/// surviving candidates of a parallel run stay bit-identical to a serial
/// run.  One budget belongs to one candidate evaluation (consume() is called
/// from that evaluation's thread only); the cancel flag may be flipped from
/// any thread — pool tasks poll it cooperatively so a runaway analysis
/// degrades to BudgetExhausted instead of hanging a worker.
class EvalBudget {
 public:
  /// `limit` = maximum work units (0 = unlimited, cancel-only).
  explicit EvalBudget(std::uint64_t limit = 0,
                      const std::atomic<bool>* externalCancel = nullptr)
      : limit_(limit), externalCancel_(externalCancel) {}

  /// Charge `units` of work.  Returns false once the budget is exhausted or
  /// cancelled; the caller must then abandon the analysis and report
  /// EvalStatus::BudgetExhausted.
  bool consume(std::uint64_t units = 1) {
    if (cancelled()) return false;
    used_ += units;
    return limit_ == 0 || used_ <= limit_;
  }

  bool exhausted() const { return (limit_ != 0 && used_ > limit_) || cancelled(); }

  /// Cooperative cancellation (safe from any thread).
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed) ||
           (externalCancel_ && externalCancel_->load(std::memory_order_relaxed));
  }

  std::uint64_t used() const { return used_; }
  std::uint64_t limit() const { return limit_; }

 private:
  std::uint64_t limit_ = 0;
  std::uint64_t used_ = 0;
  std::atomic<bool> cancelled_{false};
  const std::atomic<bool>* externalCancel_ = nullptr;
};

}  // namespace amsyn::core
