// Structured failure taxonomy and deterministic work budget for candidate
// evaluations.  The synthesis frontend is an optimization loop over
// thousands of candidate designs, and its central robustness requirement is
// that a bad candidate — unconverged bias point, singular Jacobian, NaN
// iterate, runaway transient — becomes *infeasible data*, never a crash.
// Every analysis result and every Performance map carries one of these
// reason codes so the sizing cost, corner search, and flow report *why* a
// point failed.
//
// Header-only on purpose: like core/parallel.hpp this sits below the
// evaluation libraries in the dependency order (amsyn_sim and amsyn_sizing
// include it without linking amsyn_core).
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <new>

namespace amsyn::core {

/// Why a candidate evaluation (or one analysis inside it) failed.  `Ok`
/// means the result is trustworthy; everything else marks the result
/// infeasible for the optimizer while remaining an ordinary value.
/// Codes are append-only: the numeric value is persisted in cached
/// Performance maps (sizing::kEvalStatusKey) and batch journals, so
/// reordering existing entries would reinterpret old data.
enum class EvalStatus : std::uint8_t {
  Ok = 0,
  DcNoConvergence,   ///< Newton + continuation ladder all failed to converge
  SingularJacobian,  ///< LU factorization hit a numerically singular matrix
  NanDetected,       ///< NaN/Inf appeared in an iterate, residual, or score
  BudgetExhausted,   ///< the evaluation ran out of Newton-iteration work units
  BadTopology,       ///< the candidate could not even be built into a netlist
  NoAcCrossing,      ///< AC response never crossed unity gain (no ugf/pm)
  InternalError,     ///< an exception escaped the evaluator and was contained
  DeadlineExpired,   ///< the job's wall-clock deadline passed mid-evaluation
  OutOfMemory,       ///< std::bad_alloc was contained (never retried: see below)
  Rejected,          ///< admission control shed the job before it ever ran
  SurrogatePruned,   ///< skipped by the surrogate's confident-infeasible band
  kCount,            ///< number of reason codes (for counter arrays)
};

inline constexpr std::size_t kEvalStatusCount =
    static_cast<std::size_t>(EvalStatus::kCount);

/// Stable snake_case reason-code string (what FlowResult::failureReason and
/// reports print).
inline constexpr const char* evalStatusName(EvalStatus s) {
  switch (s) {
    case EvalStatus::Ok: return "ok";
    case EvalStatus::DcNoConvergence: return "dc_no_convergence";
    case EvalStatus::SingularJacobian: return "singular_jacobian";
    case EvalStatus::NanDetected: return "nan_detected";
    case EvalStatus::BudgetExhausted: return "budget_exhausted";
    case EvalStatus::BadTopology: return "bad_topology";
    case EvalStatus::NoAcCrossing: return "no_ac_crossing";
    case EvalStatus::InternalError: return "internal_error";
    case EvalStatus::DeadlineExpired: return "deadline_expired";
    case EvalStatus::OutOfMemory: return "out_of_memory";
    case EvalStatus::Rejected: return "rejected";
    case EvalStatus::SurrogatePruned: return "surrogate_pruned";
    case EvalStatus::kCount: break;
  }
  return "unknown";
}

/// Transient-vs-permanent split of the taxonomy: whether re-running the
/// same evaluation could plausibly end differently.
///
///   * Transient (retryable): budget/deadline exhaustion depend on the
///     allowance granted, not the candidate; a singular matrix can be an
///     injected fault or a load-dependent numerical bailout; a contained
///     exception may be environmental.  Retrying with a fresh allowance
///     (or after a backoff) is worth the cost.
///   * Permanent: dc_no_convergence, nan_detected, bad_topology, and
///     no_ac_crossing are deterministic verdicts on the candidate itself —
///     the same inputs re-fail identically.  out_of_memory is permanent by
///     policy: retrying an allocation failure amplifies the overload that
///     caused it (RetryPolicy additionally hard-excludes it even when a
///     caller lists it as retryable).  rejected is the admission
///     controller's verdict, owned by the submitter, not the retry loop.
inline constexpr bool isRetryable(EvalStatus s) {
  switch (s) {
    case EvalStatus::SingularJacobian:
    case EvalStatus::BudgetExhausted:
    case EvalStatus::InternalError:
    case EvalStatus::DeadlineExpired:
      return true;
    default:
      return false;
  }
}

/// True for the two "ran out of allowance" reasons (deterministic work
/// units or wall clock) that every analysis treats as "stop charging, keep
/// partial results".
inline constexpr bool isWorkExhaustion(EvalStatus s) {
  return s == EvalStatus::BudgetExhausted || s == EvalStatus::DeadlineExpired;
}

/// Classify a contained exception into the taxonomy: std::bad_alloc is
/// out_of_memory (so OOM is never misfiled as a retryable internal error),
/// anything else internal_error.  Null maps to Ok.
inline EvalStatus classifyException(std::exception_ptr e) {
  if (!e) return EvalStatus::Ok;
  try {
    std::rethrow_exception(e);
  } catch (const std::bad_alloc&) {
    return EvalStatus::OutOfMemory;
  } catch (...) {
    return EvalStatus::InternalError;
  }
}

/// classifyException(std::current_exception()) — for use inside catch(...).
inline EvalStatus classifyCurrentException() {
  return classifyException(std::current_exception());
}

/// Deterministic evaluation budget measured in Newton-iteration work units —
/// never wall clock, so an evaluation that exhausts its budget does so at
/// the same iterate regardless of machine speed or thread count, and the
/// surviving candidates of a parallel run stay bit-identical to a serial
/// run.  One budget belongs to one candidate evaluation (consume() is called
/// from that evaluation's thread only); the cancel flag may be flipped from
/// any thread — pool tasks poll it cooperatively so a runaway analysis
/// degrades to BudgetExhausted instead of hanging a worker.
///
/// A wall-clock deadline (core/resilience.hpp composes these into per-job
/// DeadlineBudgets) may be layered on top via setDeadlineNs(): the budget
/// then also reads the monotonic clock every `stride` charges — strided so
/// the nominal path pays one integer decrement per charge, not a clock read
/// (bench/bench_robustness measures the overhead) — and reports exhaustion
/// once the deadline has passed.  Unlike the work-unit limit, a deadline
/// trip point is machine-dependent by nature; exhaustionStatus()
/// distinguishes the two (DeadlineExpired vs BudgetExhausted) so callers
/// can keep the deterministic path deterministic and classify the
/// wall-clock path as transient/retryable.
class EvalBudget {
 public:
  /// Clock-read cadence for armed deadlines, in work units.  A Newton
  /// iteration on the benchmark circuits costs ~1-10 us, so 64 units keeps
  /// deadline detection latency under a millisecond while amortizing the
  /// clock read to noise.
  static constexpr std::uint64_t kDeadlineCheckStride = 64;

  /// `limit` = maximum work units (0 = unlimited, cancel-only).
  explicit EvalBudget(std::uint64_t limit = 0,
                      const std::atomic<bool>* externalCancel = nullptr)
      : limit_(limit), externalCancel_(externalCancel) {}

  /// Charge `units` of work.  Returns false once the budget is exhausted,
  /// cancelled, or past its deadline; the caller must then abandon the
  /// analysis and report exhaustionStatus().
  bool consume(std::uint64_t units = 1) {
    if (cancelled()) return false;
    if (deadlineNs_ != 0) {
      if (deadlineExpired_) return false;
      untilCheck_ = untilCheck_ > units ? untilCheck_ - units : 0;
      if (untilCheck_ == 0) {
        untilCheck_ = checkStride_;
        if (nowNs() >= deadlineNs_) {
          deadlineExpired_ = true;
          return false;
        }
      }
    }
    used_ += units;
    return limit_ == 0 || used_ <= limit_;
  }

  bool exhausted() const {
    return (limit_ != 0 && used_ > limit_) || cancelled() || deadlineExpired_;
  }

  /// Arm (or clear, absNs = 0) an absolute monotonic-clock deadline.  The
  /// first consume() after arming always checks the clock, so an
  /// already-expired deadline fails the very first charge — which is what
  /// makes deadline tests deterministic.
  void setDeadlineNs(std::int64_t absNs,
                     std::uint64_t strideUnits = kDeadlineCheckStride) {
    deadlineNs_ = absNs;
    checkStride_ = strideUnits == 0 ? 1 : strideUnits;
    untilCheck_ = 0;
    deadlineExpired_ = false;
  }
  std::int64_t deadlineNs() const { return deadlineNs_; }
  bool deadlineExpired() const { return deadlineExpired_; }

  /// Unconditional clock read (stage-boundary checkpoints, where one read
  /// per stage is noise): latches and returns whether the deadline passed.
  bool checkDeadline() {
    if (deadlineNs_ != 0 && !deadlineExpired_ && nowNs() >= deadlineNs_)
      deadlineExpired_ = true;
    return deadlineExpired_;
  }

  /// Which taxonomy code a failed consume() should be reported as.
  EvalStatus exhaustionStatus() const {
    return deadlineExpired_ ? EvalStatus::DeadlineExpired
                            : EvalStatus::BudgetExhausted;
  }

  /// Cooperative cancellation (safe from any thread).
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed) ||
           (externalCancel_ && externalCancel_->load(std::memory_order_relaxed));
  }

  std::uint64_t used() const { return used_; }
  std::uint64_t limit() const { return limit_; }

  /// Monotonic now in ns (steady_clock; shared by every deadline consumer
  /// so "absolute deadline ns" means one thing across the process).
  static std::int64_t nowNs() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

 private:
  std::uint64_t limit_ = 0;
  std::uint64_t used_ = 0;
  std::atomic<bool> cancelled_{false};
  const std::atomic<bool>* externalCancel_ = nullptr;
  std::int64_t deadlineNs_ = 0;  ///< absolute monotonic ns; 0 = no deadline
  std::uint64_t checkStride_ = kDeadlineCheckStride;
  std::uint64_t untilCheck_ = 0;  ///< charges until the next clock read
  bool deadlineExpired_ = false;
};

}  // namespace amsyn::core
