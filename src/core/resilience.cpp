#include "core/resilience.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "core/context.hpp"
#include "core/runreport.hpp"

namespace amsyn::core {

std::uint64_t BackoffPolicy::delayMs(std::uint64_t seed, std::size_t retry) const {
  if (retry == 0 || initialMs == 0) return 0;
  double delay = static_cast<double>(initialMs) *
                 std::pow(std::max(multiplier, 1.0), static_cast<double>(retry - 1));
  delay = std::min(delay, static_cast<double>(maxMs));
  if (jitter > 0.0) {
    // Deterministic unit draw from the (seed, retry) pair: the SplitMix64
    // finalizer's top 53 bits, the same construction the per-task RNG
    // streams use, so two runs with one seed back off identically.
    const std::uint64_t h = num::Rng::streamSeed(seed, retry);
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    const double j = std::clamp(jitter, 0.0, 1.0);
    delay *= (1.0 - j) + j * u;
  }
  return static_cast<std::uint64_t>(delay);
}

bool RetryPolicy::shouldRetry(EvalStatus st, std::size_t attemptsSoFar) const {
  if (attemptsSoFar >= maxAttempts) return false;
  if (st == EvalStatus::Ok) return false;
  // OOM is never retryable, whatever the caller listed: a retry re-runs
  // the allocation pattern that just failed, against a heap that is by
  // definition under pressure.
  if (st == EvalStatus::OutOfMemory) return false;
  if (retryableStatuses.empty()) return isRetryable(st);
  return std::find(retryableStatuses.begin(), retryableStatuses.end(), st) !=
         retryableStatuses.end();
}

std::uint64_t effectiveDeadlineMs(std::uint64_t optionMs) {
  if (optionMs != 0) return optionMs;
  // Fallback comes from the execution context's config (the ambient context
  // carries the AMSYN_JOB_DEADLINE_MS env value; a tenant context carries
  // whatever its creator configured).
  return ExecutionContext::current().config().jobDeadlineMs;
}

// ---------------------------------------------------------------------------
// Journal lines

namespace {

/// FNV-1a 64 over a byte range — the journal's torn/corrupt-line detector.
std::uint64_t fnv1a64(const char* data, std::size_t n) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Reverse of core::jsonEscape for the escapes it produces.  Returns
/// nullopt on a malformed escape (treated as a corrupt line).
std::optional<std::string> jsonUnescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out += s[i];
      continue;
    }
    if (++i >= s.size()) return std::nullopt;
    switch (s[i]) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case 'n': out += '\n'; break;
      case 't': out += '\t'; break;
      case 'r': out += '\r'; break;
      case 'u': {
        if (i + 4 >= s.size()) return std::nullopt;
        unsigned code = 0;
        for (std::size_t k = 1; k <= 4; ++k) {
          const char c = s[i + k];
          code <<= 4;
          if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
          else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
          else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
          else return std::nullopt;
        }
        if (code > 0x7f) return std::nullopt;  // the writer only emits < 0x20
        out += static_cast<char>(code);
        i += 4;
        break;
      }
      default: return std::nullopt;
    }
  }
  return out;
}

/// Locate `"key":` at top level.  Keys and the quote characters around
/// them are never escaped by the writer, while any raw `"` inside a string
/// value is written as `\"` — so searching for the raw pattern cannot
/// false-positive inside a value.
std::optional<std::size_t> findKey(const std::string& line, const std::string& key) {
  const std::string pat = "\"" + key + "\":";
  const auto pos = line.find(pat);
  if (pos == std::string::npos) return std::nullopt;
  return pos + pat.size();
}

std::optional<std::uint64_t> parseUintAt(const std::string& line, std::size_t pos) {
  if (pos >= line.size() || line[pos] < '0' || line[pos] > '9') return std::nullopt;
  std::uint64_t v = 0;
  while (pos < line.size() && line[pos] >= '0' && line[pos] <= '9') {
    v = v * 10 + static_cast<std::uint64_t>(line[pos] - '0');
    ++pos;
  }
  return v;
}

std::optional<std::uint64_t> extractUint(const std::string& line, const std::string& key) {
  const auto pos = findKey(line, key);
  if (!pos) return std::nullopt;
  return parseUintAt(line, *pos);
}

std::optional<std::string> extractString(const std::string& line, const std::string& key) {
  auto pos = findKey(line, key);
  if (!pos || *pos >= line.size() || line[*pos] != '"') return std::nullopt;
  std::size_t i = *pos + 1;
  std::string raw;
  while (i < line.size() && line[i] != '"') {
    if (line[i] == '\\') {
      if (i + 1 >= line.size()) return std::nullopt;
      raw += line[i];
      raw += line[i + 1];
      i += 2;
    } else {
      raw += line[i];
      ++i;
    }
  }
  if (i >= line.size()) return std::nullopt;  // unterminated: torn line
  return jsonUnescape(raw);
}

std::optional<EvalStatus> statusFromName(const std::string& name) {
  for (std::size_t i = 0; i < kEvalStatusCount; ++i) {
    const auto s = static_cast<EvalStatus>(i);
    if (name == evalStatusName(s)) return s;
  }
  return std::nullopt;
}

}  // namespace

std::string JobJournalEntry::toLine() const {
  std::ostringstream os;
  os << "{\"v\":1"
     << ",\"job\":" << job
     << ",\"attempts\":" << attempts
     << ",\"success\":" << (success ? 1 : 0)
     << ",\"topology\":\"" << jsonEscape(topology) << "\""
     << ",\"status\":\"" << evalStatusName(status) << "\""
     << ",\"failure_reason\":\"" << jsonEscape(failureReason) << "\""
     << ",\"redesigns\":" << redesigns;
  const std::string prefix = os.str();
  os << ",\"crc\":" << fnv1a64(prefix.data(), prefix.size()) << "}";
  return os.str();
}

std::optional<JobJournalEntry> JobJournalEntry::parseLine(const std::string& line) {
  // Structural integrity first: the crc field covers every byte before it,
  // so a torn tail, a bit flip, or a half-written number all fail here.
  const std::string crcPat = ",\"crc\":";
  const auto crcPos = line.rfind(crcPat);
  if (crcPos == std::string::npos || line.empty() || line.front() != '{' ||
      line.back() != '}')
    return std::nullopt;
  const auto crc = parseUintAt(line, crcPos + crcPat.size());
  if (!crc || *crc != fnv1a64(line.data(), crcPos)) return std::nullopt;

  const auto version = extractUint(line, "v");
  if (!version || *version != 1) return std::nullopt;

  JobJournalEntry e;
  const auto job = extractUint(line, "job");
  const auto attempts = extractUint(line, "attempts");
  const auto success = extractUint(line, "success");
  const auto topology = extractString(line, "topology");
  const auto statusName = extractString(line, "status");
  const auto reason = extractString(line, "failure_reason");
  const auto redesigns = extractUint(line, "redesigns");
  if (!job || !attempts || !success || !topology || !statusName || !reason ||
      !redesigns)
    return std::nullopt;
  const auto status = statusFromName(*statusName);
  if (!status) return std::nullopt;
  e.job = *job;
  e.attempts = *attempts;
  e.success = *success != 0;
  e.topology = *topology;
  e.status = *status;
  e.failureReason = *reason;
  e.redesigns = *redesigns;
  return e;
}

std::map<std::size_t, JobJournalEntry> BatchJournal::load(const std::string& path) {
  std::map<std::size_t, JobJournalEntry> entries;
  std::ifstream in(path, std::ios::binary);
  if (!in) return entries;  // no journal yet: empty, not an error
  std::string line;
  while (std::getline(in, line)) {
    // A crash tears at most the final line; the first invalid line ends
    // the trustworthy prefix (later lines were appended after the tear and
    // cannot be ordered against it).
    const auto entry = JobJournalEntry::parseLine(line);
    if (!entry) break;
    entries[entry->job] = *entry;
  }
  return entries;
}

void BatchJournal::rewrite(const std::map<std::size_t, JobJournalEntry>& entries) const {
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  for (const auto& [job, entry] : entries) {
    (void)job;
    out << entry.toLine() << '\n';
  }
  out.flush();
}

void BatchJournal::append(const JobJournalEntry& entry) const {
  std::ofstream out(path_, std::ios::binary | std::ios::app);
  out << entry.toLine() << '\n';
  out.flush();
}

}  // namespace amsyn::core
