// Learned surrogate screening over evaluation traffic (ROADMAP: "learned
// surrogate screening"; cf. the ML-enabled AMS synthesis survey,
// arXiv:2112.07824).  An incremental ridge-regression model is fitted online
// from the (candidate -> Performance) pairs that sizing::safeEvaluate already
// produces by the thousand, then consumed in two modes:
//
//   * Ordering — pre-rank evaluation batches (annealing calibration probes,
//     genetic offspring, corner vertices) so promising candidates evaluate
//     first.  Results land in their original index slots and every reduction
//     scans index order, so final results are bit-identical by construction;
//     only the parallel claim order changes.
//   * Pruning — skip evaluations whose predicted worst-case constraint
//     margin is confidently infeasible (calibrated uncertainty band).  This
//     mode can change results and is therefore off by default and audited:
//     every pruned candidate is logged so tests can re-evaluate it offline
//     and count false prunes.
//
// Like the evaluation cache this sits below the evaluation libraries:
// sizing/topology/manufacture consult it on their hot paths, so the target
// (amsyn_surrogate) depends only on amsyn_metrics.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/evalcache.hpp"

namespace amsyn::core::surrogate {

/// Consumption mode (see file comment).  Pruning implies ordering: a store
/// confident enough to skip evaluations certainly pre-ranks them too.
enum class Mode : std::uint8_t {
  Off,       ///< surrogate neither trains nor predicts (default)
  Ordering,  ///< train + pre-rank batches; results bit-identical
  Pruning,   ///< ordering + skip confidently-infeasible evaluations
};

inline constexpr const char* modeName(Mode m) {
  switch (m) {
    case Mode::Off: return "off";
    case Mode::Ordering: return "ordering";
    case Mode::Pruning: return "pruning";
  }
  return "unknown";
}

/// A featurized candidate: the class key identifies one learnable family
/// (model identity minus anything encoded in the feature vector), and the
/// feature vector is [1 (bias)] ++ normalized design coordinates ++ model
/// context (e.g. corner-process parameters).  Built by
/// sizing::surrogateCandidate from a PerformanceModel's attestation.
struct Candidate {
  cache::Digest128 classKey;
  std::vector<double> features;
};

/// One per-head prediction.  `sigma` is the calibrated predictive standard
/// deviation s * sqrt(1 + phi' P phi) with s^2 estimated prequentially
/// (predict-before-train residuals), so it reflects honest out-of-sample
/// error, not training fit.  `calibrated` turns true once enough residuals
/// accumulated for sigma to be trustworthy; pruning must require it.
struct Prediction {
  double mean = 0.0;
  double sigma = 0.0;
  bool calibrated = false;
};

/// Incremental ridge regression with a shared design-matrix inverse and one
/// output head per performance name.  Maintains P = (lambda I + X'X)^-1 via
/// Sherman–Morrison rank-1 updates, so training is O(d^2) per observed pair
/// and prediction is O(d^2) (lazy weight refresh) or O(d) when weights are
/// clean.  Deterministic: the same observation sequence produces bit-equal
/// predictions.  NOT thread-safe — Store serializes access per class.
class RidgeModel {
 public:
  static constexpr double kDefaultLambda = 1e-3;
  /// Prequential residuals required before sigma counts as calibrated.
  static constexpr std::size_t kMinCalibration = 32;

  explicit RidgeModel(std::size_t dim, double lambda = kDefaultLambda);

  /// Fold in one observation.  `phi` must have length dim; `heads` maps
  /// performance name -> observed value.  The head set is pinned by the
  /// first observation; later observations must carry the same names
  /// (returns false and ignores the pair otherwise), keeping every head's
  /// weights an exact ridge solve over the same design matrix.
  bool observe(const std::vector<double>& phi,
               const std::map<std::string, double>& heads);

  /// Predict one head at phi.  nullopt until the model has seen at least
  /// dim observations (underdetermined fits order nothing useful) or when
  /// the head is unknown.
  std::optional<Prediction> predict(const std::vector<double>& phi,
                                    const std::string& head);

  std::size_t dimension() const { return dim_; }
  std::size_t observations() const { return count_; }

  /// Current ridge weights for one head (empty if unknown) — exposed for
  /// the property tests that compare against a batch normal-equation solve.
  std::vector<double> weights(const std::string& head);

 private:
  struct Head {
    std::vector<double> b;  ///< accumulated X'y
    std::vector<double> w;  ///< lazy P b
    bool dirty = true;
    std::uint64_t residuals = 0;
    double residualSumSq = 0.0;
  };

  void refresh(Head& h);

  std::size_t dim_;
  double lambda_;
  std::size_t count_ = 0;
  std::vector<double> p_;  ///< row-major dim x dim, symmetric
  std::map<std::string, Head> heads_;
};

/// Process-wide surrogate store: one RidgeModel per candidate class, a mode
/// switch, metrics, and the pruning audit log.  All methods are thread-safe.
class Store {
 public:
  /// The process-wide store (leaked on purpose).  Production code resolves
  /// it through core::ExecutionContext; the shared instance seeds its mode
  /// from AMSYN_SURROGATE.
  static Store& instance();

  /// A private store for context isolation: own models, prune log, and
  /// class gauge, starting in Mode::Off with no env seeding and no registry
  /// externals ("core.surrogate.classes" keeps naming the shared store).
  static std::unique_ptr<Store> createIsolated();

  ~Store();

  /// Consumption mode; initialized from AMSYN_SURROGATE (unset/"0"/"off" =
  /// Off, "1"/"on"/"order"/"ordering" = Ordering, "prune"/"pruning" =
  /// Pruning), overridable per flow via FlowOptions::surrogate.
  Mode mode() const;
  void setMode(Mode m);

  /// Training tap (called by sizing::safeEvaluate on fresh, feasible
  /// evaluations).  Creates the class on first sight; non-finite features
  /// or values, dimension drift, and head-set drift are declined.
  void observe(const Candidate& c, const std::map<std::string, double>& heads);

  /// Per-head predictions for one candidate.  Unknown class, unknown head,
  /// or an immature model yield nullopt in that slot.
  std::optional<Prediction> predict(const Candidate& c, const std::string& head);
  std::vector<std::optional<Prediction>> predictMany(
      const Candidate& c, const std::vector<std::string>& heads);

  /// Tally one batch whose evaluation order the surrogate actually permuted.
  void noteOrderedBatch();

  /// Audit record for one pruned evaluation: enough to re-run the real
  /// evaluator offline and check the verdict (tests/surrogate_test.cpp
  /// counts false prunes against a budget of zero).
  struct PruneRecord {
    cache::Digest128 classKey;
    std::vector<double> x;        ///< raw design point (model space)
    std::string spec;             ///< performance that triggered the prune
    double predictedMargin = 0.0; ///< normalized margin bound that triggered
    double sigma = 0.0;           ///< normalized predictive sigma
    /// Corner coordinates for hunt-vertex prunes (empty for candidate-level
    /// prunes): lets the audit rebuild the exact pruned evaluation.
    std::vector<double> corner;
  };
  void recordPrune(PruneRecord r);
  std::vector<PruneRecord> pruneLog() const;

  struct SurrogateStats {
    std::uint64_t observations = 0;
    std::uint64_t predictions = 0;
    std::uint64_t declined = 0;
    std::uint64_t orderedBatches = 0;
    std::uint64_t pruned = 0;
    std::uint64_t classes = 0;
  };
  SurrogateStats stats() const;

  /// Drop all learned state and the prune log (mode is kept).  Differential
  /// tests call this between arms so each run trains from scratch.
  void clear();

 private:
  /// `shared` selects env-seeded mode + the registry external (the process
  /// instance) vs. Mode::Off and no externals (isolated instances).
  explicit Store(bool shared);
  struct Impl;
  Impl& impl() const { return *impl_; }
  std::unique_ptr<Impl> impl_;
};

/// Deterministic evaluation order for a scored batch: indices with scores
/// first, stable-sorted ascending (lower = more promising), then unscored
/// indices in their original order.  Pure scheduling — callers map results
/// back to original slots, so reductions are unaffected.
std::vector<std::size_t> orderByScore(
    const std::vector<std::optional<double>>& scores);

}  // namespace amsyn::core::surrogate
