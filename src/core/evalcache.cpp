#include "core/evalcache.hpp"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <list>
#include <mutex>
#include <unordered_map>

#include "core/envknobs.hpp"
#include "core/metrics.hpp"
#include "core/trace.hpp"

namespace amsyn::core::cache {

Hasher128& Hasher128::mixQuantized(double v, double quantum) {
  if (quantum <= 0.0 || v == 0.0 || !std::isfinite(v)) return mixDouble(v);
  int exp = 0;
  const double mantissa = std::frexp(std::fabs(v), &exp);  // [0.5, 1)
  mix(std::signbit(v) ? 1u : 0u);
  mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(exp)));
  mix(static_cast<std::uint64_t>(std::llround(mantissa / quantum)));
  return *this;
}

namespace {

struct DigestHash {
  std::size_t operator()(const Digest128& d) const noexcept {
    return static_cast<std::size_t>(d.hi ^ (d.lo * 0x9e3779b97f4a7c15ULL));
  }
};

bool bitIdentical(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

/// Approximate resident bytes of one entry: container overheads are charged
/// at a flat rate; string keys at their length (small-string storage counts
/// the same — this is an observability estimate, not an allocator audit).
std::size_t entryBytes(const std::vector<double>& x, const CachedEval& v) {
  std::size_t bytes = sizeof(Digest128) + 64;  // key + node/list overhead
  bytes += x.size() * sizeof(double);
  for (const auto& [name, value] : v.performance)
    bytes += name.size() + sizeof(value) + 48;  // map-node overhead
  return bytes;
}

constexpr std::size_t kBuiltinCapacity = std::size_t{1} << 16;

}  // namespace

struct EvalCache::Impl {
  static constexpr std::size_t kShards = 16;

  struct Entry {
    std::vector<double> x;
    CachedEval value;
    std::list<Digest128>::iterator lruIt;
    std::size_t bytes = 0;
  };

  struct Shard {
    std::mutex mutex;
    std::unordered_map<Digest128, Entry, DigestHash> map;
    /// Strict LRU, front = most recently used.  Deterministic for a serial
    /// access sequence; under concurrency the interleaving (and therefore
    /// which entry is evicted) may vary, which can only vary the *hit rate*:
    /// payloads equal fresh evaluations, so results never depend on it.
    std::list<Digest128> lru;
  };

  std::atomic<bool> enabled{true};
  std::atomic<std::size_t> capacity{kBuiltinCapacity};
  std::atomic<double> quantum{0.0};
  /// What setCapacity(0) restores: the env-derived capacity for the shared
  /// instance, the built-in default for isolated ones.
  std::size_t defaultCapacity = kBuiltinCapacity;
  std::atomic<std::uint64_t> entries{0};
  std::atomic<std::uint64_t> bytes{0};
  Shard shards[kShards];

  metrics::CounterId cHits, cMisses, cInserts, cEvictions, cCollisions, cBypasses;

  explicit Impl(bool shared) {
    if (shared) {
      // The process-wide instance seeds its policy from the environment —
      // the same parsers ContextConfig::fromEnv uses, so the two cannot
      // drift.  Isolated instances keep the built-in defaults; their policy
      // comes from the owning ExecutionContext.
      enabled.store(envknobs::evalCacheEnabled(), std::memory_order_relaxed);
      defaultCapacity = envknobs::evalCacheCapacity();
      capacity.store(defaultCapacity, std::memory_order_relaxed);
      quantum.store(envknobs::evalCacheQuantum(), std::memory_order_relaxed);
    }
    auto& reg = metrics::registry();
    // Registered eagerly (not lazily at first lookup) so the counter *keys*
    // in run-report snapshots are identical with the cache enabled and
    // disabled — the differential tests compare report schemas across both.
    cHits = reg.counter("core.cache.hits");
    cMisses = reg.counter("core.cache.misses");
    cInserts = reg.counter("core.cache.inserts");
    cEvictions = reg.counter("core.cache.evictions");
    cCollisions = reg.counter("core.cache.collisions");
    cBypasses = reg.counter("core.cache.bypasses");
    if (shared) {
      // Occupancy gauges name the shared instance only: registerExternal
      // replaces readers by name, so an isolated instance registering here
      // would silently hijack the process-wide report fields.
      reg.registerExternal("core.cache.entries",
                           [this] { return entries.load(std::memory_order_relaxed); });
      reg.registerExternal("core.cache.bytes",
                           [this] { return bytes.load(std::memory_order_relaxed); });
    }
  }

  Shard& shardFor(const Digest128& key) { return shards[key.hi % kShards]; }

  std::size_t perShardCapacity() const {
    const std::size_t cap = capacity.load(std::memory_order_relaxed);
    return cap == 0 ? 1 : std::max<std::size_t>(1, cap / kShards);
  }
};

EvalCache::EvalCache(bool shared) : impl_(std::make_unique<Impl>(shared)) {}

EvalCache::~EvalCache() = default;

EvalCache& EvalCache::instance() {
  static EvalCache* leaked = new EvalCache(/*shared=*/true);
  return *leaked;
}

std::unique_ptr<EvalCache> EvalCache::createIsolated() {
  return std::unique_ptr<EvalCache>(new EvalCache(/*shared=*/false));
}

bool EvalCache::enabled() const { return impl().enabled.load(std::memory_order_relaxed); }
void EvalCache::setEnabled(bool on) { impl().enabled.store(on, std::memory_order_relaxed); }

void EvalCache::setCapacity(std::size_t maxEntries) {
  impl().capacity.store(maxEntries == 0 ? impl().defaultCapacity : maxEntries,
                        std::memory_order_relaxed);
}
std::size_t EvalCache::capacity() const {
  return impl().capacity.load(std::memory_order_relaxed);
}

double EvalCache::quantum() const { return impl().quantum.load(std::memory_order_relaxed); }
void EvalCache::setQuantum(double q) {
  impl().quantum.store(q > 0.0 && q < 0.5 ? q : 0.0, std::memory_order_relaxed);
}

bool EvalCache::lookup(const Digest128& key, const std::vector<double>& exactX,
                       CachedEval& out) {
  AMSYN_SPAN("cache_lookup");
  Impl& im = impl();
  Impl::Shard& shard = im.shardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    metrics::add(im.cMisses);
    return false;
  }
  // Exact-bit mode: a digest match with a different sizing vector is a
  // collision (either a hash accident or a nonzero-quantum key built
  // elsewhere); returning it would break the bit-identity proof, so miss.
  if (im.quantum.load(std::memory_order_relaxed) <= 0.0 &&
      !bitIdentical(it->second.x, exactX)) {
    metrics::add(im.cCollisions);
    metrics::add(im.cMisses);
    return false;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lruIt);
  out = it->second.value;
  metrics::add(im.cHits);
  return true;
}

void EvalCache::insert(const Digest128& key, const std::vector<double>& exactX,
                       CachedEval value) {
  AMSYN_SPAN("cache_insert");
  Impl& im = impl();
  Impl::Shard& shard = im.shardFor(key);
  const std::size_t cap = im.perShardCapacity();
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    // First payload sticks (any two writers computed the same value from
    // the same deterministic evaluation); just refresh recency.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lruIt);
    return;
  }
  shard.lru.push_front(key);
  Impl::Entry entry;
  entry.x = exactX;
  entry.bytes = entryBytes(exactX, value);
  entry.value = std::move(value);
  entry.lruIt = shard.lru.begin();
  im.bytes.fetch_add(entry.bytes, std::memory_order_relaxed);
  im.entries.fetch_add(1, std::memory_order_relaxed);
  shard.map.emplace(key, std::move(entry));
  metrics::add(im.cInserts);
  while (shard.map.size() > cap) {
    const Digest128 victim = shard.lru.back();
    auto vit = shard.map.find(victim);
    im.bytes.fetch_sub(vit->second.bytes, std::memory_order_relaxed);
    im.entries.fetch_sub(1, std::memory_order_relaxed);
    shard.map.erase(vit);
    shard.lru.pop_back();
    metrics::add(im.cEvictions);
  }
}

void EvalCache::noteBypass() { metrics::add(impl().cBypasses); }

void EvalCache::clear() {
  Impl& im = impl();
  for (auto& shard : im.shards) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [key, entry] : shard.map) {
      im.bytes.fetch_sub(entry.bytes, std::memory_order_relaxed);
      im.entries.fetch_sub(1, std::memory_order_relaxed);
    }
    shard.map.clear();
    shard.lru.clear();
  }
}

CacheStats EvalCache::stats() const {
  Impl& im = impl();
  auto& reg = metrics::registry();
  CacheStats s;
  s.hits = reg.total(im.cHits);
  s.misses = reg.total(im.cMisses);
  s.inserts = reg.total(im.cInserts);
  s.evictions = reg.total(im.cEvictions);
  s.collisions = reg.total(im.cCollisions);
  s.bypasses = reg.total(im.cBypasses);
  s.entries = im.entries.load(std::memory_order_relaxed);
  s.bytes = im.bytes.load(std::memory_order_relaxed);
  return s;
}

}  // namespace amsyn::core::cache
