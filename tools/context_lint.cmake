# Context-discipline lint: the grep gate behind the scoped-execution-context
# refactor (core/context.hpp).  Process-global reach-arounds must not creep
# back into production code, so this script fails when any file under src/
# (outside the sanctioned few) spells:
#
#   Registry::instance(        -> use metrics::registry() (or a context)
#   EvalCache::instance(       -> use core::currentEvalCache() / ctx.evalCache()
#   Store::instance(           -> use core::currentSurrogateStore() /
#                                 ctx.surrogateStore()   [surrogate::Store]
#   FaultInjector::instance(   -> the injector is per-thread (threadLocal());
#                                 a process-singleton spelling is always wrong
#   getenv("AMSYN_            -> read the knob from ContextConfig (snapshotted
#                                 once by fromEnv() via core/envknobs.hpp)
#
# Sanctioned files are the ones that *implement* the shared handles and the
# single environment snapshot; everything else goes through a context.
# Same spirit as tests/tier1_gate_check.cmake: registered as a ctest test
# and run as a standalone CI step, so a violation fails the gate with the
# offending file:line spelled out.
#
# Run manually:  cmake -DSOURCE_DIR=. -P tools/context_lint.cmake
cmake_minimum_required(VERSION 3.20)

if(NOT DEFINED SOURCE_DIR)
  message(FATAL_ERROR "context_lint: pass -DSOURCE_DIR=<repo root>")
endif()
get_filename_component(SOURCE_DIR "${SOURCE_DIR}" ABSOLUTE)

# Rule format: <regex>|<human hint>|<comma-separated allowlist under src/>.
# `|` and `,` never appear in the patterns or paths, so one string per rule
# survives CMake's list flattening intact.
set(rules
  "Registry::instance\\(|use metrics::registry()|core/metrics.hpp,core/metrics.cpp"
  "EvalCache::instance\\(|use core::currentEvalCache() or ctx.evalCache()|core/evalcache.cpp,core/context.cpp"
  "Store::instance\\(|use core::currentSurrogateStore() or ctx.surrogateStore()|core/surrogate.cpp,core/context.cpp"
  "FaultInjector::instance\\(|the fault injector is per-thread: FaultInjector::threadLocal()|"
  "getenv\\(\"AMSYN_|AMSYN_* knobs are snapshotted once by ContextConfig::fromEnv()|core/envknobs.hpp"
)

file(GLOB_RECURSE sources
  "${SOURCE_DIR}/src/*.hpp"
  "${SOURCE_DIR}/src/*.cpp")

set(violations "")
set(nchecked 0)
foreach(path IN LISTS sources)
  # Never lint stray build trees that nest under src/ in a dirty checkout.
  if(path MATCHES "CMakeFiles")
    continue()
  endif()
  math(EXPR nchecked "${nchecked} + 1")
  file(READ "${path}" content)
  # C++ sources are full of `;`, which CMake treats as a list separator;
  # swap them out before turning newlines into list structure.
  string(ASCII 1 semi)
  string(REPLACE ";" "${semi}" content "${content}")
  string(REPLACE "\n" ";" lines "${content}")
  file(RELATIVE_PATH rel "${SOURCE_DIR}/src" "${path}")
  foreach(rule IN LISTS rules)
    string(REPLACE "|" ";" parts "${rule}")
    list(GET parts 0 pattern)
    list(GET parts 1 hint)
    set(allowed "")
    list(LENGTH parts nparts)
    if(nparts GREATER 2)
      list(GET parts 2 allowed)
      string(REPLACE "," ";" allowed "${allowed}")
    endif()
    if(rel IN_LIST allowed)
      continue()
    endif()
    if(NOT content MATCHES "${pattern}")
      continue()
    endif()
    # A hit somewhere in the file: walk lines for exact locations.
    set(lineno 0)
    foreach(line IN LISTS lines)
      math(EXPR lineno "${lineno} + 1")
      if(NOT line MATCHES "${pattern}")
        continue()
      endif()
      # The NetlistBuilderRegistry is an ordinary factory registry, not a
      # retired context singleton; its name merely ends in "Registry".
      if(line MATCHES "NetlistBuilderRegistry")
        continue()
      endif()
      string(REPLACE "${semi}" ";" line "${line}")
      string(STRIP "${line}" line)
      string(APPEND violations
        "  src/${rel}:${lineno}: ${hint}\n    ${line}\n")
    endforeach()
  endforeach()
endforeach()

if(nchecked EQUAL 0)
  message(FATAL_ERROR "context_lint: found no sources under ${SOURCE_DIR}/src")
endif()

if(violations)
  message(FATAL_ERROR
    "context_lint: process-global reach-arounds found —\n${violations}"
    "Resolve shared state through core::ExecutionContext (core/context.hpp); "
    "the sanctioned spellings live only in the files that implement them.")
endif()
message(STATUS "context_lint: ${nchecked} sources clean")
