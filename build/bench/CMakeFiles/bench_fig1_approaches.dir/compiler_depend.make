# Empty compiler generated dependencies file for bench_fig1_approaches.
# This may be replaced when dependencies are built.
