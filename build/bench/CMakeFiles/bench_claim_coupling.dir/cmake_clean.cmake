file(REMOVE_RECURSE
  "CMakeFiles/bench_claim_coupling.dir/bench_claim_coupling.cpp.o"
  "CMakeFiles/bench_claim_coupling.dir/bench_claim_coupling.cpp.o.d"
  "bench_claim_coupling"
  "bench_claim_coupling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_claim_coupling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
