# Empty dependencies file for bench_claim_coupling.
# This may be replaced when dependencies are built.
