
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablations.cpp" "bench/CMakeFiles/bench_ablations.dir/bench_ablations.cpp.o" "gcc" "bench/CMakeFiles/bench_ablations.dir/bench_ablations.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/amsyn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/amsyn_power.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/amsyn_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/knowledge/CMakeFiles/amsyn_knowledge.dir/DependInfo.cmake"
  "/root/repo/build/src/sizing/CMakeFiles/amsyn_sizing.dir/DependInfo.cmake"
  "/root/repo/build/src/awe/CMakeFiles/amsyn_awe.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/system/CMakeFiles/amsyn_layout_system.dir/DependInfo.cmake"
  "/root/repo/build/src/extract/CMakeFiles/amsyn_extract.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/cell/CMakeFiles/amsyn_layout_cell.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/amsyn_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/amsyn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/amsyn_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/amsyn_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
