file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_cell_layouts.dir/bench_fig2_cell_layouts.cpp.o"
  "CMakeFiles/bench_fig2_cell_layouts.dir/bench_fig2_cell_layouts.cpp.o.d"
  "bench_fig2_cell_layouts"
  "bench_fig2_cell_layouts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_cell_layouts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
