# Empty dependencies file for bench_fig2_cell_layouts.
# This may be replaced when dependencies are built.
