# Empty dependencies file for bench_claim_corners.
# This may be replaced when dependencies are built.
