file(REMOVE_RECURSE
  "CMakeFiles/bench_claim_corners.dir/bench_claim_corners.cpp.o"
  "CMakeFiles/bench_claim_corners.dir/bench_claim_corners.cpp.o.d"
  "bench_claim_corners"
  "bench_claim_corners.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_claim_corners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
