# Empty compiler generated dependencies file for bench_claim_eval_speed.
# This may be replaced when dependencies are built.
