file(REMOVE_RECURSE
  "CMakeFiles/bench_claim_eval_speed.dir/bench_claim_eval_speed.cpp.o"
  "CMakeFiles/bench_claim_eval_speed.dir/bench_claim_eval_speed.cpp.o.d"
  "bench_claim_eval_speed"
  "bench_claim_eval_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_claim_eval_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
