file(REMOVE_RECURSE
  "CMakeFiles/bench_claim_stacking.dir/bench_claim_stacking.cpp.o"
  "CMakeFiles/bench_claim_stacking.dir/bench_claim_stacking.cpp.o.d"
  "bench_claim_stacking"
  "bench_claim_stacking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_claim_stacking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
