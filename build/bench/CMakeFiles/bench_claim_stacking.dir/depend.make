# Empty dependencies file for bench_claim_stacking.
# This may be replaced when dependencies are built.
