file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_pulse_detector.dir/bench_table1_pulse_detector.cpp.o"
  "CMakeFiles/bench_table1_pulse_detector.dir/bench_table1_pulse_detector.cpp.o.d"
  "bench_table1_pulse_detector"
  "bench_table1_pulse_detector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_pulse_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
