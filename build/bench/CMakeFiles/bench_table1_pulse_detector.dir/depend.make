# Empty dependencies file for bench_table1_pulse_detector.
# This may be replaced when dependencies are built.
