file(REMOVE_RECURSE
  "libamsyn_geom.a"
)
