# Empty dependencies file for amsyn_geom.
# This may be replaced when dependencies are built.
