file(REMOVE_RECURSE
  "CMakeFiles/amsyn_geom.dir/layout.cpp.o"
  "CMakeFiles/amsyn_geom.dir/layout.cpp.o.d"
  "CMakeFiles/amsyn_geom.dir/rect.cpp.o"
  "CMakeFiles/amsyn_geom.dir/rect.cpp.o.d"
  "CMakeFiles/amsyn_geom.dir/transform.cpp.o"
  "CMakeFiles/amsyn_geom.dir/transform.cpp.o.d"
  "libamsyn_geom.a"
  "libamsyn_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amsyn_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
