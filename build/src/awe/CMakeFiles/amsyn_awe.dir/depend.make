# Empty dependencies file for amsyn_awe.
# This may be replaced when dependencies are built.
