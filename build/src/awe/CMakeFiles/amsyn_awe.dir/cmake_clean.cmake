file(REMOVE_RECURSE
  "CMakeFiles/amsyn_awe.dir/awe.cpp.o"
  "CMakeFiles/amsyn_awe.dir/awe.cpp.o.d"
  "libamsyn_awe.a"
  "libamsyn_awe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amsyn_awe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
