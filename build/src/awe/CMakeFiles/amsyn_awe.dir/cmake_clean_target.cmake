file(REMOVE_RECURSE
  "libamsyn_awe.a"
)
