file(REMOVE_RECURSE
  "libamsyn_sim.a"
)
