# Empty dependencies file for amsyn_sim.
# This may be replaced when dependencies are built.
