file(REMOVE_RECURSE
  "CMakeFiles/amsyn_sim.dir/ac.cpp.o"
  "CMakeFiles/amsyn_sim.dir/ac.cpp.o.d"
  "CMakeFiles/amsyn_sim.dir/dc.cpp.o"
  "CMakeFiles/amsyn_sim.dir/dc.cpp.o.d"
  "CMakeFiles/amsyn_sim.dir/measure.cpp.o"
  "CMakeFiles/amsyn_sim.dir/measure.cpp.o.d"
  "CMakeFiles/amsyn_sim.dir/mna.cpp.o"
  "CMakeFiles/amsyn_sim.dir/mna.cpp.o.d"
  "CMakeFiles/amsyn_sim.dir/noise.cpp.o"
  "CMakeFiles/amsyn_sim.dir/noise.cpp.o.d"
  "CMakeFiles/amsyn_sim.dir/transient.cpp.o"
  "CMakeFiles/amsyn_sim.dir/transient.cpp.o.d"
  "libamsyn_sim.a"
  "libamsyn_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amsyn_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
