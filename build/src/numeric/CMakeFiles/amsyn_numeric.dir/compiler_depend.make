# Empty compiler generated dependencies file for amsyn_numeric.
# This may be replaced when dependencies are built.
