file(REMOVE_RECURSE
  "libamsyn_numeric.a"
)
