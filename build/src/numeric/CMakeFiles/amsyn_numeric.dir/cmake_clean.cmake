file(REMOVE_RECURSE
  "CMakeFiles/amsyn_numeric.dir/anneal.cpp.o"
  "CMakeFiles/amsyn_numeric.dir/anneal.cpp.o.d"
  "CMakeFiles/amsyn_numeric.dir/matrix.cpp.o"
  "CMakeFiles/amsyn_numeric.dir/matrix.cpp.o.d"
  "CMakeFiles/amsyn_numeric.dir/optimize.cpp.o"
  "CMakeFiles/amsyn_numeric.dir/optimize.cpp.o.d"
  "CMakeFiles/amsyn_numeric.dir/pade.cpp.o"
  "CMakeFiles/amsyn_numeric.dir/pade.cpp.o.d"
  "CMakeFiles/amsyn_numeric.dir/polynomial.cpp.o"
  "CMakeFiles/amsyn_numeric.dir/polynomial.cpp.o.d"
  "CMakeFiles/amsyn_numeric.dir/sparse.cpp.o"
  "CMakeFiles/amsyn_numeric.dir/sparse.cpp.o.d"
  "CMakeFiles/amsyn_numeric.dir/stats.cpp.o"
  "CMakeFiles/amsyn_numeric.dir/stats.cpp.o.d"
  "libamsyn_numeric.a"
  "libamsyn_numeric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amsyn_numeric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
