
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/numeric/anneal.cpp" "src/numeric/CMakeFiles/amsyn_numeric.dir/anneal.cpp.o" "gcc" "src/numeric/CMakeFiles/amsyn_numeric.dir/anneal.cpp.o.d"
  "/root/repo/src/numeric/matrix.cpp" "src/numeric/CMakeFiles/amsyn_numeric.dir/matrix.cpp.o" "gcc" "src/numeric/CMakeFiles/amsyn_numeric.dir/matrix.cpp.o.d"
  "/root/repo/src/numeric/optimize.cpp" "src/numeric/CMakeFiles/amsyn_numeric.dir/optimize.cpp.o" "gcc" "src/numeric/CMakeFiles/amsyn_numeric.dir/optimize.cpp.o.d"
  "/root/repo/src/numeric/pade.cpp" "src/numeric/CMakeFiles/amsyn_numeric.dir/pade.cpp.o" "gcc" "src/numeric/CMakeFiles/amsyn_numeric.dir/pade.cpp.o.d"
  "/root/repo/src/numeric/polynomial.cpp" "src/numeric/CMakeFiles/amsyn_numeric.dir/polynomial.cpp.o" "gcc" "src/numeric/CMakeFiles/amsyn_numeric.dir/polynomial.cpp.o.d"
  "/root/repo/src/numeric/sparse.cpp" "src/numeric/CMakeFiles/amsyn_numeric.dir/sparse.cpp.o" "gcc" "src/numeric/CMakeFiles/amsyn_numeric.dir/sparse.cpp.o.d"
  "/root/repo/src/numeric/stats.cpp" "src/numeric/CMakeFiles/amsyn_numeric.dir/stats.cpp.o" "gcc" "src/numeric/CMakeFiles/amsyn_numeric.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
