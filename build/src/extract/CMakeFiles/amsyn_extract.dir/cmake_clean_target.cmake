file(REMOVE_RECURSE
  "libamsyn_extract.a"
)
