file(REMOVE_RECURSE
  "CMakeFiles/amsyn_extract.dir/extract.cpp.o"
  "CMakeFiles/amsyn_extract.dir/extract.cpp.o.d"
  "CMakeFiles/amsyn_extract.dir/matchgen.cpp.o"
  "CMakeFiles/amsyn_extract.dir/matchgen.cpp.o.d"
  "CMakeFiles/amsyn_extract.dir/sens.cpp.o"
  "CMakeFiles/amsyn_extract.dir/sens.cpp.o.d"
  "libamsyn_extract.a"
  "libamsyn_extract.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amsyn_extract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
