# Empty dependencies file for amsyn_extract.
# This may be replaced when dependencies are built.
