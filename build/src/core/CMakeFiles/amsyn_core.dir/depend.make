# Empty dependencies file for amsyn_core.
# This may be replaced when dependencies are built.
