file(REMOVE_RECURSE
  "libamsyn_core.a"
)
