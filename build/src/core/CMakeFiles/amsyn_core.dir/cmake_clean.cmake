file(REMOVE_RECURSE
  "CMakeFiles/amsyn_core.dir/assemble.cpp.o"
  "CMakeFiles/amsyn_core.dir/assemble.cpp.o.d"
  "CMakeFiles/amsyn_core.dir/celllayout.cpp.o"
  "CMakeFiles/amsyn_core.dir/celllayout.cpp.o.d"
  "CMakeFiles/amsyn_core.dir/flow.cpp.o"
  "CMakeFiles/amsyn_core.dir/flow.cpp.o.d"
  "CMakeFiles/amsyn_core.dir/report.cpp.o"
  "CMakeFiles/amsyn_core.dir/report.cpp.o.d"
  "libamsyn_core.a"
  "libamsyn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amsyn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
