file(REMOVE_RECURSE
  "CMakeFiles/amsyn_power.dir/grid.cpp.o"
  "CMakeFiles/amsyn_power.dir/grid.cpp.o.d"
  "CMakeFiles/amsyn_power.dir/rail.cpp.o"
  "CMakeFiles/amsyn_power.dir/rail.cpp.o.d"
  "libamsyn_power.a"
  "libamsyn_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amsyn_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
