# Empty compiler generated dependencies file for amsyn_power.
# This may be replaced when dependencies are built.
