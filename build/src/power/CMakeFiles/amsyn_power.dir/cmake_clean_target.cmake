file(REMOVE_RECURSE
  "libamsyn_power.a"
)
