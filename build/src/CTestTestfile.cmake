# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("numeric")
subdirs("geom")
subdirs("circuit")
subdirs("sim")
subdirs("awe")
subdirs("symbolic")
subdirs("sizing")
subdirs("knowledge")
subdirs("topology")
subdirs("manufacture")
subdirs("layout")
subdirs("power")
subdirs("extract")
subdirs("core")
