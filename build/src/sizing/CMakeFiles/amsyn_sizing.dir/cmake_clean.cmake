file(REMOVE_RECURSE
  "CMakeFiles/amsyn_sizing.dir/cost.cpp.o"
  "CMakeFiles/amsyn_sizing.dir/cost.cpp.o.d"
  "CMakeFiles/amsyn_sizing.dir/database.cpp.o"
  "CMakeFiles/amsyn_sizing.dir/database.cpp.o.d"
  "CMakeFiles/amsyn_sizing.dir/eqmodel.cpp.o"
  "CMakeFiles/amsyn_sizing.dir/eqmodel.cpp.o.d"
  "CMakeFiles/amsyn_sizing.dir/opamp.cpp.o"
  "CMakeFiles/amsyn_sizing.dir/opamp.cpp.o.d"
  "CMakeFiles/amsyn_sizing.dir/pulse.cpp.o"
  "CMakeFiles/amsyn_sizing.dir/pulse.cpp.o.d"
  "CMakeFiles/amsyn_sizing.dir/relaxed.cpp.o"
  "CMakeFiles/amsyn_sizing.dir/relaxed.cpp.o.d"
  "CMakeFiles/amsyn_sizing.dir/simmodel.cpp.o"
  "CMakeFiles/amsyn_sizing.dir/simmodel.cpp.o.d"
  "CMakeFiles/amsyn_sizing.dir/spec.cpp.o"
  "CMakeFiles/amsyn_sizing.dir/spec.cpp.o.d"
  "CMakeFiles/amsyn_sizing.dir/synth.cpp.o"
  "CMakeFiles/amsyn_sizing.dir/synth.cpp.o.d"
  "libamsyn_sizing.a"
  "libamsyn_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amsyn_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
