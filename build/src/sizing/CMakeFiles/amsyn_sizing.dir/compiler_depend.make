# Empty compiler generated dependencies file for amsyn_sizing.
# This may be replaced when dependencies are built.
