file(REMOVE_RECURSE
  "libamsyn_sizing.a"
)
