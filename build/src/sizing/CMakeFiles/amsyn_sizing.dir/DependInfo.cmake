
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sizing/cost.cpp" "src/sizing/CMakeFiles/amsyn_sizing.dir/cost.cpp.o" "gcc" "src/sizing/CMakeFiles/amsyn_sizing.dir/cost.cpp.o.d"
  "/root/repo/src/sizing/database.cpp" "src/sizing/CMakeFiles/amsyn_sizing.dir/database.cpp.o" "gcc" "src/sizing/CMakeFiles/amsyn_sizing.dir/database.cpp.o.d"
  "/root/repo/src/sizing/eqmodel.cpp" "src/sizing/CMakeFiles/amsyn_sizing.dir/eqmodel.cpp.o" "gcc" "src/sizing/CMakeFiles/amsyn_sizing.dir/eqmodel.cpp.o.d"
  "/root/repo/src/sizing/opamp.cpp" "src/sizing/CMakeFiles/amsyn_sizing.dir/opamp.cpp.o" "gcc" "src/sizing/CMakeFiles/amsyn_sizing.dir/opamp.cpp.o.d"
  "/root/repo/src/sizing/pulse.cpp" "src/sizing/CMakeFiles/amsyn_sizing.dir/pulse.cpp.o" "gcc" "src/sizing/CMakeFiles/amsyn_sizing.dir/pulse.cpp.o.d"
  "/root/repo/src/sizing/relaxed.cpp" "src/sizing/CMakeFiles/amsyn_sizing.dir/relaxed.cpp.o" "gcc" "src/sizing/CMakeFiles/amsyn_sizing.dir/relaxed.cpp.o.d"
  "/root/repo/src/sizing/simmodel.cpp" "src/sizing/CMakeFiles/amsyn_sizing.dir/simmodel.cpp.o" "gcc" "src/sizing/CMakeFiles/amsyn_sizing.dir/simmodel.cpp.o.d"
  "/root/repo/src/sizing/spec.cpp" "src/sizing/CMakeFiles/amsyn_sizing.dir/spec.cpp.o" "gcc" "src/sizing/CMakeFiles/amsyn_sizing.dir/spec.cpp.o.d"
  "/root/repo/src/sizing/synth.cpp" "src/sizing/CMakeFiles/amsyn_sizing.dir/synth.cpp.o" "gcc" "src/sizing/CMakeFiles/amsyn_sizing.dir/synth.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/amsyn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/awe/CMakeFiles/amsyn_awe.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/amsyn_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/amsyn_circuit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
