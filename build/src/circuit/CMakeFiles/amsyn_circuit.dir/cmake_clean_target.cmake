file(REMOVE_RECURSE
  "libamsyn_circuit.a"
)
