# Empty dependencies file for amsyn_circuit.
# This may be replaced when dependencies are built.
