file(REMOVE_RECURSE
  "CMakeFiles/amsyn_circuit.dir/mosmodel.cpp.o"
  "CMakeFiles/amsyn_circuit.dir/mosmodel.cpp.o.d"
  "CMakeFiles/amsyn_circuit.dir/netlist.cpp.o"
  "CMakeFiles/amsyn_circuit.dir/netlist.cpp.o.d"
  "CMakeFiles/amsyn_circuit.dir/parser.cpp.o"
  "CMakeFiles/amsyn_circuit.dir/parser.cpp.o.d"
  "CMakeFiles/amsyn_circuit.dir/process.cpp.o"
  "CMakeFiles/amsyn_circuit.dir/process.cpp.o.d"
  "libamsyn_circuit.a"
  "libamsyn_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amsyn_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
