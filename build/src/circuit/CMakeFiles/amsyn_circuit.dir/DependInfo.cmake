
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/mosmodel.cpp" "src/circuit/CMakeFiles/amsyn_circuit.dir/mosmodel.cpp.o" "gcc" "src/circuit/CMakeFiles/amsyn_circuit.dir/mosmodel.cpp.o.d"
  "/root/repo/src/circuit/netlist.cpp" "src/circuit/CMakeFiles/amsyn_circuit.dir/netlist.cpp.o" "gcc" "src/circuit/CMakeFiles/amsyn_circuit.dir/netlist.cpp.o.d"
  "/root/repo/src/circuit/parser.cpp" "src/circuit/CMakeFiles/amsyn_circuit.dir/parser.cpp.o" "gcc" "src/circuit/CMakeFiles/amsyn_circuit.dir/parser.cpp.o.d"
  "/root/repo/src/circuit/process.cpp" "src/circuit/CMakeFiles/amsyn_circuit.dir/process.cpp.o" "gcc" "src/circuit/CMakeFiles/amsyn_circuit.dir/process.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/numeric/CMakeFiles/amsyn_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
