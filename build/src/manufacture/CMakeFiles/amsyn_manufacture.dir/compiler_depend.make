# Empty compiler generated dependencies file for amsyn_manufacture.
# This may be replaced when dependencies are built.
