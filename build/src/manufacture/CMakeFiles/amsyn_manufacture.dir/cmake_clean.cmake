file(REMOVE_RECURSE
  "CMakeFiles/amsyn_manufacture.dir/corners.cpp.o"
  "CMakeFiles/amsyn_manufacture.dir/corners.cpp.o.d"
  "CMakeFiles/amsyn_manufacture.dir/yield.cpp.o"
  "CMakeFiles/amsyn_manufacture.dir/yield.cpp.o.d"
  "libamsyn_manufacture.a"
  "libamsyn_manufacture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amsyn_manufacture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
