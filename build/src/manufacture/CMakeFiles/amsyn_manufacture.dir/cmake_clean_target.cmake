file(REMOVE_RECURSE
  "libamsyn_manufacture.a"
)
