# Empty compiler generated dependencies file for amsyn_knowledge.
# This may be replaced when dependencies are built.
