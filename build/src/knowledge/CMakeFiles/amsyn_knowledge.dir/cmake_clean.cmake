file(REMOVE_RECURSE
  "CMakeFiles/amsyn_knowledge.dir/opamp_plans.cpp.o"
  "CMakeFiles/amsyn_knowledge.dir/opamp_plans.cpp.o.d"
  "CMakeFiles/amsyn_knowledge.dir/plan.cpp.o"
  "CMakeFiles/amsyn_knowledge.dir/plan.cpp.o.d"
  "CMakeFiles/amsyn_knowledge.dir/pulse_plan.cpp.o"
  "CMakeFiles/amsyn_knowledge.dir/pulse_plan.cpp.o.d"
  "libamsyn_knowledge.a"
  "libamsyn_knowledge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amsyn_knowledge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
