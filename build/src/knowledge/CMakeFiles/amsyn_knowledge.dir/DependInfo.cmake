
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/knowledge/opamp_plans.cpp" "src/knowledge/CMakeFiles/amsyn_knowledge.dir/opamp_plans.cpp.o" "gcc" "src/knowledge/CMakeFiles/amsyn_knowledge.dir/opamp_plans.cpp.o.d"
  "/root/repo/src/knowledge/plan.cpp" "src/knowledge/CMakeFiles/amsyn_knowledge.dir/plan.cpp.o" "gcc" "src/knowledge/CMakeFiles/amsyn_knowledge.dir/plan.cpp.o.d"
  "/root/repo/src/knowledge/pulse_plan.cpp" "src/knowledge/CMakeFiles/amsyn_knowledge.dir/pulse_plan.cpp.o" "gcc" "src/knowledge/CMakeFiles/amsyn_knowledge.dir/pulse_plan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sizing/CMakeFiles/amsyn_sizing.dir/DependInfo.cmake"
  "/root/repo/build/src/awe/CMakeFiles/amsyn_awe.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/amsyn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/amsyn_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/amsyn_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
