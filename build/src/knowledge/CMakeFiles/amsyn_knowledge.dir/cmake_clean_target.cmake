file(REMOVE_RECURSE
  "libamsyn_knowledge.a"
)
