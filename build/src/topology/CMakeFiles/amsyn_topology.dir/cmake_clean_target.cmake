file(REMOVE_RECURSE
  "libamsyn_topology.a"
)
