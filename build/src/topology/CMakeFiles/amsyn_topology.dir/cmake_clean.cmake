file(REMOVE_RECURSE
  "CMakeFiles/amsyn_topology.dir/genetic.cpp.o"
  "CMakeFiles/amsyn_topology.dir/genetic.cpp.o.d"
  "CMakeFiles/amsyn_topology.dir/joint.cpp.o"
  "CMakeFiles/amsyn_topology.dir/joint.cpp.o.d"
  "CMakeFiles/amsyn_topology.dir/library.cpp.o"
  "CMakeFiles/amsyn_topology.dir/library.cpp.o.d"
  "CMakeFiles/amsyn_topology.dir/select.cpp.o"
  "CMakeFiles/amsyn_topology.dir/select.cpp.o.d"
  "libamsyn_topology.a"
  "libamsyn_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amsyn_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
