# Empty dependencies file for amsyn_topology.
# This may be replaced when dependencies are built.
