
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/genetic.cpp" "src/topology/CMakeFiles/amsyn_topology.dir/genetic.cpp.o" "gcc" "src/topology/CMakeFiles/amsyn_topology.dir/genetic.cpp.o.d"
  "/root/repo/src/topology/joint.cpp" "src/topology/CMakeFiles/amsyn_topology.dir/joint.cpp.o" "gcc" "src/topology/CMakeFiles/amsyn_topology.dir/joint.cpp.o.d"
  "/root/repo/src/topology/library.cpp" "src/topology/CMakeFiles/amsyn_topology.dir/library.cpp.o" "gcc" "src/topology/CMakeFiles/amsyn_topology.dir/library.cpp.o.d"
  "/root/repo/src/topology/select.cpp" "src/topology/CMakeFiles/amsyn_topology.dir/select.cpp.o" "gcc" "src/topology/CMakeFiles/amsyn_topology.dir/select.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sizing/CMakeFiles/amsyn_sizing.dir/DependInfo.cmake"
  "/root/repo/build/src/knowledge/CMakeFiles/amsyn_knowledge.dir/DependInfo.cmake"
  "/root/repo/build/src/awe/CMakeFiles/amsyn_awe.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/amsyn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/amsyn_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/amsyn_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
