# CMake generated Testfile for 
# Source directory: /root/repo/src/layout/system
# Build directory: /root/repo/build/src/layout/system
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
