file(REMOVE_RECURSE
  "CMakeFiles/amsyn_layout_system.dir/channel.cpp.o"
  "CMakeFiles/amsyn_layout_system.dir/channel.cpp.o.d"
  "CMakeFiles/amsyn_layout_system.dir/floorplan.cpp.o"
  "CMakeFiles/amsyn_layout_system.dir/floorplan.cpp.o.d"
  "CMakeFiles/amsyn_layout_system.dir/segregate.cpp.o"
  "CMakeFiles/amsyn_layout_system.dir/segregate.cpp.o.d"
  "CMakeFiles/amsyn_layout_system.dir/wren.cpp.o"
  "CMakeFiles/amsyn_layout_system.dir/wren.cpp.o.d"
  "libamsyn_layout_system.a"
  "libamsyn_layout_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amsyn_layout_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
