# Empty compiler generated dependencies file for amsyn_layout_system.
# This may be replaced when dependencies are built.
