file(REMOVE_RECURSE
  "libamsyn_layout_system.a"
)
