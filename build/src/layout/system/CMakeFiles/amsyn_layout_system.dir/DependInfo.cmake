
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/layout/system/channel.cpp" "src/layout/system/CMakeFiles/amsyn_layout_system.dir/channel.cpp.o" "gcc" "src/layout/system/CMakeFiles/amsyn_layout_system.dir/channel.cpp.o.d"
  "/root/repo/src/layout/system/floorplan.cpp" "src/layout/system/CMakeFiles/amsyn_layout_system.dir/floorplan.cpp.o" "gcc" "src/layout/system/CMakeFiles/amsyn_layout_system.dir/floorplan.cpp.o.d"
  "/root/repo/src/layout/system/segregate.cpp" "src/layout/system/CMakeFiles/amsyn_layout_system.dir/segregate.cpp.o" "gcc" "src/layout/system/CMakeFiles/amsyn_layout_system.dir/segregate.cpp.o.d"
  "/root/repo/src/layout/system/wren.cpp" "src/layout/system/CMakeFiles/amsyn_layout_system.dir/wren.cpp.o" "gcc" "src/layout/system/CMakeFiles/amsyn_layout_system.dir/wren.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/amsyn_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/amsyn_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/cell/CMakeFiles/amsyn_layout_cell.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/amsyn_circuit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
