file(REMOVE_RECURSE
  "libamsyn_layout_cell.a"
)
