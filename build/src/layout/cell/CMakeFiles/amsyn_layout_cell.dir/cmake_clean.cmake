file(REMOVE_RECURSE
  "CMakeFiles/amsyn_layout_cell.dir/drc.cpp.o"
  "CMakeFiles/amsyn_layout_cell.dir/drc.cpp.o.d"
  "CMakeFiles/amsyn_layout_cell.dir/modgen.cpp.o"
  "CMakeFiles/amsyn_layout_cell.dir/modgen.cpp.o.d"
  "CMakeFiles/amsyn_layout_cell.dir/place.cpp.o"
  "CMakeFiles/amsyn_layout_cell.dir/place.cpp.o.d"
  "CMakeFiles/amsyn_layout_cell.dir/route.cpp.o"
  "CMakeFiles/amsyn_layout_cell.dir/route.cpp.o.d"
  "CMakeFiles/amsyn_layout_cell.dir/stack.cpp.o"
  "CMakeFiles/amsyn_layout_cell.dir/stack.cpp.o.d"
  "libamsyn_layout_cell.a"
  "libamsyn_layout_cell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amsyn_layout_cell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
