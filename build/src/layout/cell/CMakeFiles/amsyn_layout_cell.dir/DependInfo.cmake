
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/layout/cell/drc.cpp" "src/layout/cell/CMakeFiles/amsyn_layout_cell.dir/drc.cpp.o" "gcc" "src/layout/cell/CMakeFiles/amsyn_layout_cell.dir/drc.cpp.o.d"
  "/root/repo/src/layout/cell/modgen.cpp" "src/layout/cell/CMakeFiles/amsyn_layout_cell.dir/modgen.cpp.o" "gcc" "src/layout/cell/CMakeFiles/amsyn_layout_cell.dir/modgen.cpp.o.d"
  "/root/repo/src/layout/cell/place.cpp" "src/layout/cell/CMakeFiles/amsyn_layout_cell.dir/place.cpp.o" "gcc" "src/layout/cell/CMakeFiles/amsyn_layout_cell.dir/place.cpp.o.d"
  "/root/repo/src/layout/cell/route.cpp" "src/layout/cell/CMakeFiles/amsyn_layout_cell.dir/route.cpp.o" "gcc" "src/layout/cell/CMakeFiles/amsyn_layout_cell.dir/route.cpp.o.d"
  "/root/repo/src/layout/cell/stack.cpp" "src/layout/cell/CMakeFiles/amsyn_layout_cell.dir/stack.cpp.o" "gcc" "src/layout/cell/CMakeFiles/amsyn_layout_cell.dir/stack.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/amsyn_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/amsyn_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/amsyn_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
