# Empty compiler generated dependencies file for amsyn_layout_cell.
# This may be replaced when dependencies are built.
