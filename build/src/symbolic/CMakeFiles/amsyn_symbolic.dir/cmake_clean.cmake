file(REMOVE_RECURSE
  "CMakeFiles/amsyn_symbolic.dir/analyze.cpp.o"
  "CMakeFiles/amsyn_symbolic.dir/analyze.cpp.o.d"
  "CMakeFiles/amsyn_symbolic.dir/linearize.cpp.o"
  "CMakeFiles/amsyn_symbolic.dir/linearize.cpp.o.d"
  "CMakeFiles/amsyn_symbolic.dir/sympoly.cpp.o"
  "CMakeFiles/amsyn_symbolic.dir/sympoly.cpp.o.d"
  "libamsyn_symbolic.a"
  "libamsyn_symbolic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amsyn_symbolic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
