# Empty compiler generated dependencies file for amsyn_symbolic.
# This may be replaced when dependencies are built.
