file(REMOVE_RECURSE
  "libamsyn_symbolic.a"
)
