# Empty compiler generated dependencies file for symbolic_analysis.
# This may be replaced when dependencies are built.
