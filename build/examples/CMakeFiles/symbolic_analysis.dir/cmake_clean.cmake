file(REMOVE_RECURSE
  "CMakeFiles/symbolic_analysis.dir/symbolic_analysis.cpp.o"
  "CMakeFiles/symbolic_analysis.dir/symbolic_analysis.cpp.o.d"
  "symbolic_analysis"
  "symbolic_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symbolic_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
