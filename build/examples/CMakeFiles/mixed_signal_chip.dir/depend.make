# Empty dependencies file for mixed_signal_chip.
# This may be replaced when dependencies are built.
