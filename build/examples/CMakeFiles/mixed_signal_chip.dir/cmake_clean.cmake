file(REMOVE_RECURSE
  "CMakeFiles/mixed_signal_chip.dir/mixed_signal_chip.cpp.o"
  "CMakeFiles/mixed_signal_chip.dir/mixed_signal_chip.cpp.o.d"
  "mixed_signal_chip"
  "mixed_signal_chip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixed_signal_chip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
