# Empty dependencies file for pulse_detector.
# This may be replaced when dependencies are built.
