file(REMOVE_RECURSE
  "CMakeFiles/pulse_detector.dir/pulse_detector.cpp.o"
  "CMakeFiles/pulse_detector.dir/pulse_detector.cpp.o.d"
  "pulse_detector"
  "pulse_detector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pulse_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
