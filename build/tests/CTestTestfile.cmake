# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/numeric_test[1]_include.cmake")
include("/root/repo/build/tests/geom_test[1]_include.cmake")
include("/root/repo/build/tests/circuit_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/awe_test[1]_include.cmake")
include("/root/repo/build/tests/symbolic_test[1]_include.cmake")
include("/root/repo/build/tests/sizing_test[1]_include.cmake")
include("/root/repo/build/tests/knowledge_test[1]_include.cmake")
include("/root/repo/build/tests/pulse_test[1]_include.cmake")
include("/root/repo/build/tests/topology_test[1]_include.cmake")
include("/root/repo/build/tests/manufacture_test[1]_include.cmake")
include("/root/repo/build/tests/layout_cell_test[1]_include.cmake")
include("/root/repo/build/tests/layout_system_test[1]_include.cmake")
include("/root/repo/build/tests/power_test[1]_include.cmake")
include("/root/repo/build/tests/extract_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/pulse_plan_test[1]_include.cmake")
