# Empty compiler generated dependencies file for layout_system_test.
# This may be replaced when dependencies are built.
