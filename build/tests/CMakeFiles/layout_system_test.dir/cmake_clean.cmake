file(REMOVE_RECURSE
  "CMakeFiles/layout_system_test.dir/layout_system_test.cpp.o"
  "CMakeFiles/layout_system_test.dir/layout_system_test.cpp.o.d"
  "layout_system_test"
  "layout_system_test.pdb"
  "layout_system_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layout_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
