# Empty compiler generated dependencies file for layout_cell_test.
# This may be replaced when dependencies are built.
