file(REMOVE_RECURSE
  "CMakeFiles/layout_cell_test.dir/layout_cell_test.cpp.o"
  "CMakeFiles/layout_cell_test.dir/layout_cell_test.cpp.o.d"
  "layout_cell_test"
  "layout_cell_test.pdb"
  "layout_cell_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layout_cell_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
