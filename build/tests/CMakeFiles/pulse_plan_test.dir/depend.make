# Empty dependencies file for pulse_plan_test.
# This may be replaced when dependencies are built.
