file(REMOVE_RECURSE
  "CMakeFiles/pulse_plan_test.dir/pulse_plan_test.cpp.o"
  "CMakeFiles/pulse_plan_test.dir/pulse_plan_test.cpp.o.d"
  "pulse_plan_test"
  "pulse_plan_test.pdb"
  "pulse_plan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pulse_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
