# Empty dependencies file for manufacture_test.
# This may be replaced when dependencies are built.
