file(REMOVE_RECURSE
  "CMakeFiles/manufacture_test.dir/manufacture_test.cpp.o"
  "CMakeFiles/manufacture_test.dir/manufacture_test.cpp.o.d"
  "manufacture_test"
  "manufacture_test.pdb"
  "manufacture_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manufacture_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
