file(REMOVE_RECURSE
  "CMakeFiles/pulse_test.dir/pulse_test.cpp.o"
  "CMakeFiles/pulse_test.dir/pulse_test.cpp.o.d"
  "pulse_test"
  "pulse_test.pdb"
  "pulse_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pulse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
