// Quickstart: the whole amsyn flow in one file.
//
// Specify an opamp -> pick a topology -> size it -> verify by simulation ->
// lay it out -> extract parasitics -> verify again post-layout.  This is the
// hierarchical performance-driven methodology of the paper's section 2.1,
// driven through the high-level core API.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>
#include <iostream>

#include "core/flow.hpp"
#include "core/report.hpp"

int main() {
  using namespace amsyn;

  // 1. The specification: what the circuit must do.
  sizing::SpecSet specs;
  specs.atLeast("gain_db", 65.0)
      .atLeast("ugf", 3e6)     // unity-gain frequency (Hz)
      .atLeast("pm", 50.0)     // phase margin (degrees)
      .atMost("power", 5e-3)   // watts
      .minimize("power", 0.3, 1e-3);

  // 2. Run the flow against the default 0.8 um process.
  const auto& proc = circuit::defaultProcess();
  core::FlowOptions opts;
  opts.loadCap = 5e-12;
  const auto result = core::synthesizeAmplifier(specs, proc, opts);

  if (!result.success) {
    std::cout << "synthesis failed: " << result.failureReason << "\n";
    return 1;
  }

  // 3. Report, paper-style.
  std::cout << "topology: " << result.topology << "\n";
  std::cout << "redesign iterations (closing the loop): " << result.redesigns << "\n\n";

  core::Table table({"performance", "spec", "pre-layout", "post-layout"});
  const auto& pre = result.verifications.front().measured;
  const auto& post = result.verifications.back().measured;
  table.addRow({"gain (dB)", ">= 65", core::Table::num(pre.at("gain_db")),
                core::Table::num(post.at("gain_db"))});
  table.addRow({"UGF (MHz)", ">= 3", core::Table::num(pre.at("ugf") / 1e6),
                core::Table::num(post.at("ugf") / 1e6)});
  table.addRow({"phase margin (deg)", ">= 50", core::Table::num(pre.at("pm")),
                core::Table::num(post.at("pm"))});
  table.addRow({"power (mW)", "<= 5", core::Table::num(pre.at("power") * 1e3),
                core::Table::num(post.at("power") * 1e3)});
  table.print(std::cout);

  std::cout << "\nlayout: " << result.cell.areaLambda2 << " lambda^2, "
            << result.cell.wirelengthLambda << " lambda of wire, "
            << result.cell.stackedDevices << " devices merged into stacks\n";
  std::cout << "matching constraints found: " << result.cell.matching.size() << "\n";
  return 0;
}
