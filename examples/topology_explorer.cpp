// Topology selection across a specification sweep: the three strategies of
// section 2.2 side by side — heuristic rules (OPASYN-style), interval-
// analysis boundary checking (ref [15]), and the genetic joint search
// (DARWIN, ref [28]) — deciding between a single-stage OTA and a two-stage
// Miller opamp as the gain requirement rises.
//
// Build & run:  cmake --build build && ./build/examples/topology_explorer
#include <iostream>

#include "core/report.hpp"
#include "topology/genetic.hpp"
#include "topology/library.hpp"
#include "topology/select.hpp"

int main() {
  using namespace amsyn;
  const auto& proc = circuit::defaultProcess();
  const auto lib = topology::amplifierLibrary(proc, 5e-12);

  core::Table t({"gain spec (dB)", "rule-based pick", "interval verdicts",
                 "genetic winner", "genetic feasible"});

  for (double gain : {30.0, 40.0, 50.0, 60.0, 70.0, 80.0}) {
    sizing::SpecSet specs;
    specs.atLeast("gain_db", gain).atLeast("ugf", 2e6).minimize("power", 1.0, 1e-3);

    const auto rules = topology::ruleBasedSelect(lib, specs);
    const auto intervals = topology::intervalSelect(lib, specs);
    std::string verdicts;
    for (const auto& c : intervals)
      verdicts += c.name.substr(0, 3) + (c.feasible ? "+ " : "- ");

    topology::GeneticOptions gopts;
    gopts.seed = 31;
    gopts.generations = 40;
    const auto ga = topology::geneticSelectAndSize(lib, specs, gopts);

    t.addRow({core::Table::num(gain), rules.front().name, verdicts, ga.topology,
              ga.feasible ? "yes" : "no"});
  }
  t.print(std::cout);

  std::cout << "\nreading: 'ota+' / 'two-' etc. mark interval feasibility; the\n"
               "single-stage OTA drops out as provably infeasible once the gain\n"
               "spec passes what one stage can deliver, and every strategy then\n"
               "converges on the two-stage Miller opamp.\n";
  return 0;
}
