// The paper's Table-1 scenario as an application: hierarchical synthesis of
// a pulse-detector frontend (charge-sensitive amplifier + 4-stage pulse
// shaper), reproducing the AMGIE experiment where the synthesis system beat
// an expert's design by ~6x in power while meeting every spec.
//
// Build & run:  cmake --build build && ./build/examples/pulse_detector
#include <iostream>

#include "core/report.hpp"
#include "sizing/pulse.hpp"
#include "sizing/synth.hpp"

int main() {
  using namespace amsyn;
  const auto& proc = circuit::defaultProcess();

  sizing::PulseDetectorModel model(proc);

  // Table 1's specification column.
  sizing::SpecSet specs;
  specs.atMost("peaking_us", 1.5)
      .atLeast("counting_khz", 200.0)
      .atMost("noise_e", 1000.0)
      .atLeast("gain_v_fc", 20.0)
      .atMost("gain_v_fc", 23.0)
      .atLeast("range_v", 1.0)
      .minimize("power", 1.0, 1e-3)
      .minimize("area_mm2", 0.2, 1.0);

  // The encoded expert solution ("manual" column).
  const auto manual = model.evaluate(model.manualDesign());

  // Optimization-based synthesis.
  sizing::SynthesisOptions opts;
  opts.seed = 11;
  const auto synth = sizing::synthesize(model, specs, opts);

  core::Table t({"performance", "specification", "manual", "synthesis"});
  auto row = [&](const std::string& label, const std::string& spec, const std::string& key,
                 double scale) {
    t.addRow({label, spec, core::Table::num(manual.at(key) * scale),
              core::Table::num(synth.performance.at(key) * scale)});
  };
  row("peaking time (us)", "< 1.5", "peaking_us", 1.0);
  row("counting rate (kHz)", "> 200", "counting_khz", 1.0);
  row("noise (rms e-)", "< 1000", "noise_e", 1.0);
  row("gain (V/fC)", "20", "gain_v_fc", 1.0);
  row("output range (+/- V)", "-1..1", "range_v", 1.0);
  row("power (mW)", "minimal", "power", 1e3);
  row("area (mm^2)", "minimal", "area_mm2", 1.0);
  t.print(std::cout);

  std::cout << "\nsynthesis " << (synth.feasible ? "meets every spec" : "FAILED specs")
            << "; power improvement over the expert: "
            << manual.at("power") / synth.performance.at("power") << "x  (paper: ~6x)\n";
  std::cout << "model evaluations: " << synth.evaluations << ", wall time "
            << synth.seconds << " s\n";
  return synth.feasible ? 0 : 1;
}
