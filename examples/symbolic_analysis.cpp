// ISAAC-style symbolic analysis (the paper's ref [12]): linearize a
// transistor circuit at its simulated operating point, derive the exact
// symbolic transfer function, then simplify it to the few dominant terms a
// designer actually reads — and check the simplification against the
// numeric simulator.
//
// Build & run:  cmake --build build && ./build/examples/symbolic_analysis
#include <iostream>

#include "circuit/parser.hpp"
#include "sim/ac.hpp"
#include "sim/dc.hpp"
#include "symbolic/analyze.hpp"
#include "symbolic/linearize.hpp"

int main() {
  using namespace amsyn;
  const auto& proc = circuit::defaultProcess();

  // A common-source stage with a cascode: enough structure for the symbolic
  // expression to have interesting dominant/negligible terms.
  auto net = circuit::parseDeck(R"(
VDD vdd 0 DC 5
VG g 0 DC 0.92 AC 1
VCAS casc 0 DC 2.2
RD vdd out 100k
M2 out casc mid 0 NMOS W=30u L=2u
M1 mid g 0 0 NMOS W=30u L=2u
CL out 0 2p
.end)");

  sim::Mna mna(net, proc);
  const auto op = sim::dcOperatingPoint(mna, sim::flatStart(mna, proc.vdd / 2));
  if (!op.converged) {
    std::cout << "bias failed\n";
    return 1;
  }

  const auto lin = symbolic::linearize(mna, op);
  const auto h = symbolic::voltageTransfer(lin.circuit, lin.node("g"), lin.node("out"));

  std::cout << "exact symbolic transfer function (" << h.termCount() << " terms):\n  "
            << h.toString(lin.circuit.symbols()) << "\n\n";

  for (double eps : {0.01, 0.1, 0.3}) {
    const auto simp = h.simplified(lin.circuit.symbols(), eps);
    std::cout << "simplified at eps = " << eps << " (" << simp.termCount() << " terms):\n  "
              << simp.toString(lin.circuit.symbols()) << "\n";
    const double exact = h.magnitudeAt(lin.circuit.symbols(), 1e3);
    const double approx = simp.magnitudeAt(lin.circuit.symbols(), 1e3);
    std::cout << "  |H| at 1 kHz: exact " << exact << ", simplified " << approx << " ("
              << 100.0 * std::abs(approx - exact) / exact << "% error)\n\n";
  }

  // Cross-check the symbolic function against the numeric simulator.
  std::cout << "symbolic vs numeric AC:\n";
  for (double f : {1e2, 1e5, 1e7, 1e8}) {
    const double sym = h.magnitudeAt(lin.circuit.symbols(), f);
    const double num = std::abs(sim::acTransfer(mna, op, "out", f));
    std::cout << "  f = " << f << " Hz: symbolic " << sym << ", simulator " << num << "\n";
  }
  return 0;
}
