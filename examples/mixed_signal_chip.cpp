// System assembly (section 3.2 of the paper): floorplan a mixed-signal chip
// with the WRIGHT substrate-aware annealer, globally route its signals with
// WREN under SNR constraints, and synthesize the power grid with RAIL.
//
// Build & run:  cmake --build build && ./build/examples/mixed_signal_chip
#include <iostream>

#include "core/report.hpp"
#include "layout/system/floorplan.hpp"
#include "layout/system/wren.hpp"
#include "power/rail.hpp"

int main() {
  using namespace amsyn;
  const auto& proc = circuit::defaultProcess();

  // --- the chip: a data-channel-like mix of digital and analog blocks ---
  std::vector<layout::Block> blocks = {
      {"dsp", 8000, 6000, 10.0, 0.0},   // digital signal processor (noisy)
      {"ctrl", 5000, 4000, 6.0, 0.0},   // digital control (noisy)
      {"adc", 4000, 4000, 0.0, 8.0},    // analog front-end (sensitive)
      {"vco", 3000, 3000, 0.0, 5.0},    // timing recovery VCO (sensitive)
      {"rom", 4000, 3000, 0.0, 0.0},
  };
  std::vector<layout::BlockNet> nets = {
      {"bus", {"dsp", "ctrl", "rom"}},
      {"sample", {"adc", "dsp"}},
      {"clk", {"vco", "dsp", "ctrl"}},
  };

  // --- WRIGHT floorplan: substrate noise in the cost ---
  layout::FloorplanOptions fpOpts;
  fpOpts.noiseWeight = 4.0;
  fpOpts.seed = 5;
  const auto fp = layout::wrightFloorplan(blocks, nets, fpOpts);
  std::cout << "floorplan: " << fp.chipBox.width() / 4 << " x " << fp.chipBox.height() / 4
            << " lambda, substrate-noise figure " << fp.substrateNoise
            << (fp.overlapFree ? " (legal)" : " (OVERLAPS!)") << "\n";
  for (const auto& b : fp.blocks)
    std::cout << "  " << b.name << " at (" << b.rect.x0 / 4 << ", " << b.rect.y0 / 4
              << ") lambda\n";

  // --- WREN global routing with an SNR budget on the sensitive signal ---
  const auto graph = layout::channelGraphFromFloorplan(fp);
  std::vector<layout::GlobalNet> gnets = {
      {"clk", layout::WireClass::Noisy,
       {fp.block("vco").rect.center(), fp.block("dsp").rect.center(),
        fp.block("ctrl").rect.center()}, 0.0},
      {"sample", layout::WireClass::Sensitive,
       {fp.block("adc").rect.center(), fp.block("dsp").rect.center()}, 2.0},
  };
  const auto routed = layout::wrenGlobalRoute(graph, gnets);
  std::cout << "\nWREN: channel graph " << graph.nodes.size() << " junctions / "
            << graph.edges.size() << " channels\n";
  std::cout << "  sample net coupling: raw " << routed.couplingRaw.at("sample")
            << ", after constraint mapping " << routed.couplingMitigated.at("sample")
            << " (budget 2.0, " << (routed.snrMet.at("sample") ? "met" : "VIOLATED")
            << ")\n";
  std::cout << "  channel directives issued: " << routed.directives.size() << "\n";

  // --- RAIL power grid over the same floorplan ---
  power::PowerGridSpec spec;
  spec.chip = fp.chipBox;
  spec.rows = 6;
  spec.cols = 6;
  spec.vdd = proc.vdd;
  spec.pads = {{{fp.chipBox.x0, fp.chipBox.y0}, 0.5, 5e-9},
               {{fp.chipBox.x1, fp.chipBox.y1}, 0.5, 5e-9}};
  for (const auto& b : blocks) {
    power::BlockLoad load;
    load.name = b.name;
    load.rect = fp.block(b.name).rect;
    load.avgCurrent = b.isDigital() ? 40e-3 : 6e-3;
    load.peakCurrent = b.isDigital() ? 200e-3 : 0.0;
    load.decouplingCap = 200e-12;
    load.analog = b.isAnalog();
    spec.loads.push_back(load);
  }
  power::PowerGrid grid(spec, proc);
  power::applyUniformWidth(grid, 2e-6);
  power::RailConstraints cons;
  const auto rail = power::synthesizePowerGrid(grid, cons, proc);

  core::Table t({"grid metric", "constraint", "before", "after RAIL"});
  t.addRow({"worst IR drop (mV)", "<= 150", core::Table::num(rail.initial.worstDcDropVolts * 1e3),
            core::Table::num(rail.final.worstDcDropVolts * 1e3)});
  t.addRow({"worst spike (mV)", "<= 300", core::Table::num(rail.initial.worstSpikeVolts * 1e3),
            core::Table::num(rail.final.worstSpikeVolts * 1e3)});
  t.addRow({"analog spike (mV)", "<= 100",
            core::Table::num(rail.initial.worstAnalogSpikeVolts * 1e3),
            core::Table::num(rail.final.worstAnalogSpikeVolts * 1e3)});
  t.addRow({"EM stress (x limit)", "<= 1", core::Table::num(rail.initial.worstEmStressRatio),
            core::Table::num(rail.final.worstEmStressRatio)});
  t.addRow({"metal area (mm^2)", "-", core::Table::num(rail.initial.metalAreaM2 * 1e6),
            core::Table::num(rail.final.metalAreaM2 * 1e6)});
  std::cout << "\n";
  t.print(std::cout);
  std::cout << "\nRAIL " << (rail.constraintsMet ? "met every constraint" : "FAILED")
            << " in " << rail.iterations << " iterations; synthesized bypass capacitance "
            << rail.addedDecapFarads * 1e9 << " nF\n";
  return rail.constraintsMet && routed.snrMet.at("sample") ? 0 : 1;
}
